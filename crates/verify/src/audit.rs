//! Model-invariant auditor.
//!
//! The static scanner checks the *source*; this module checks the
//! *data*: every device in the `me-engine` catalog and every domain
//! table in the `me-model` extrapolation must satisfy the physical and
//! arithmetic invariants the paper's tables rely on:
//!
//! - **density** — the GF/mm² figures of Table I equal peak flop/s ÷
//!   die area (cross-checked against an independently-stated copy of
//!   the published numbers, [`me_engine::catalog::declared_densities`]);
//! - **power** — `TDP ≥ idle > 0` for every device, and activity
//!   factors lie in `(0, 1]`;
//! - **memory** — modeled memory time scales with *bytes*, not element
//!   counts: a memory-bound GEMM must take ~2× longer in f64 than f32;
//! - **mixes** — domain shares of every machine mix sum to 1,
//!   accelerable fractions lie in `[0, 1]`, and the Amdahl reduction is
//!   monotone in the speedup hypothesis.
//!
//! All energy/power arithmetic goes through the typed units of
//! [`me_numerics::units`] so the auditor itself cannot commit the
//! dimensional mix-ups it polices.

use me_engine::catalog::{self, Device};
use me_engine::{EngineKind, ExecutionModel, GemmShape, NumericFormat};
use me_model::{MachineMix, MeSpeedup};
use me_numerics::{Joules, Seconds, Watts};

/// Relative tolerance for the declared-vs-computed density cross-check
/// (the paper rounds Table I to one decimal).
pub const DENSITY_TOLERANCE: f64 = 0.02;

/// Run the full audit: catalog plus model. Returns violation messages
/// (empty = everything holds).
pub fn audit_all() -> Vec<String> {
    let mut v = audit_catalog();
    v.extend(audit_model());
    v
}

/// Audit one device's intrinsic invariants.
pub fn audit_device(d: &Device) -> Vec<String> {
    let mut v = Vec::new();
    let tdp = Watts(d.tdp_w);
    let idle = Watts(d.idle_w);
    if !(tdp > Watts::ZERO) {
        v.push(format!("{}: TDP {tdp} must be positive", d.name));
    }
    if !(idle > Watts::ZERO) {
        v.push(format!("{}: idle power {idle} must be positive", d.name));
    }
    if idle > tdp {
        v.push(format!("{}: idle power {idle} exceeds TDP {tdp}", d.name));
    }
    if !(d.mem_bw_gbs > 0.0) {
        v.push(format!("{}: memory bandwidth {} GB/s must be positive", d.name, d.mem_bw_gbs));
    }
    if let Some(die) = d.die_mm2 {
        if !(die > 0.0) {
            v.push(format!("{}: die area {die} mm² must be positive", d.name));
        }
    }
    for &(engine, fmt, peak) in &d.peaks {
        if !(peak > 0.0) {
            v.push(format!(
                "{}: peak for ({}, {fmt:?}) is {peak} Gflop/s, must be positive",
                d.name,
                engine.label()
            ));
        }
        let a = d.activity(engine, fmt);
        if !(a > 0.0 && a <= 1.0) {
            v.push(format!(
                "{}: activity factor {a} for ({}, {fmt:?}) outside (0, 1]",
                d.name,
                engine.label()
            ));
        }
    }
    for i in 0..d.peaks.len() {
        for j in i + 1..d.peaks.len() {
            if d.peaks[i].0 == d.peaks[j].0 && d.peaks[i].1 == d.peaks[j].1 {
                v.push(format!(
                    "{}: duplicate peak entry for ({}, {:?})",
                    d.name,
                    d.peaks[i].0.label(),
                    d.peaks[i].1
                ));
            }
        }
    }
    v
}

/// Cross-check one declared GF/mm² figure against `peak ÷ die`.
pub fn check_density(d: &Device, fmt: NumericFormat, declared: f64) -> Option<String> {
    let Some(computed) = d.compute_density(fmt) else {
        return Some(format!(
            "{}: Table I declares {declared} GF/mm² for {fmt:?} but the catalog cannot compute a density (missing die size or peak)",
            d.name
        ));
    };
    let rel = (computed - declared).abs() / declared;
    if rel > DENSITY_TOLERANCE {
        return Some(format!(
            "{}: {fmt:?} density mismatch: declared {declared} GF/mm², computed {computed:.2} (peak ÷ die), off by {:.1}%",
            d.name,
            rel * 100.0
        ));
    }
    None
}

/// Memory-time invariant: on a memory-bound shape, f64 must take ~2× the
/// time of f32 (bytes, not element counts, divide the bandwidth).
pub fn check_memory_uses_bytes(d: &Device) -> Option<String> {
    // A rank-1-ish update: huge output, tiny compute → memory-bound on
    // any device in the catalog.
    let shape = GemmShape { m: 4096, n: 4096, k: 1 };
    // Static half: the byte formula itself must scale with element size.
    if (shape.bytes(8) - 2.0 * shape.bytes(4)).abs() > 1e-6 {
        return Some(format!(
            "{}: GemmShape::bytes(8) != 2 × bytes(4) — byte accounting is not element-size linear",
            d.name
        ));
    }
    // Model half: the executed times must show the same 2× ratio.
    let model = ExecutionModel::new(d.clone());
    let t64 = model.gemm(shape, EngineKind::Simd, NumericFormat::F64).ok()?;
    let t32 = model.gemm(shape, EngineKind::Simd, NumericFormat::F32).ok()?;
    let (t64, t32) = (t64.time(), t32.time());
    if !(t32 > Seconds::ZERO) {
        return Some(format!("{}: zero modeled time for a memory-bound GEMM", d.name));
    }
    let ratio = t64 / t32;
    if (ratio - 2.0).abs() > 0.1 {
        return Some(format!(
            "{}: memory-bound f64/f32 time ratio is {ratio:.3}, expected ~2 — memory time may be counting elements, not bytes",
            d.name
        ));
    }
    None
}

/// Audit the whole device catalog (Table I + Fig 2 + the measurement
/// platforms), including the declared-density cross-check.
pub fn audit_catalog() -> Vec<String> {
    let mut v = Vec::new();
    let mut devices: Vec<Device> = catalog::table1_devices();
    devices.extend(catalog::fig2_devices());
    devices.push(catalog::xeon_e5_2650v4_2s());
    devices.push(catalog::a64fx());
    let mut seen: Vec<&str> = Vec::new();
    for d in &devices {
        if seen.contains(&d.name) {
            continue;
        }
        seen.push(d.name);
        v.extend(audit_device(d));
        // Bytes-vs-elements check needs both f64 and f32 SIMD peaks.
        let has = |f| d.peak_gflops(EngineKind::Simd, f).is_some();
        if has(NumericFormat::F64) && has(NumericFormat::F32) {
            v.extend(check_memory_uses_bytes(d));
        }
    }
    for (name, fmt, declared) in catalog::declared_densities() {
        let Some(d) = devices.iter().find(|d| d.name == name) else {
            v.push(format!("declared density references unknown device `{name}`"));
            continue;
        };
        v.extend(check_density(d, fmt, declared));
    }
    v
}

/// Audit one machine mix's Amdahl invariants.
pub fn audit_mix(mix: &MachineMix) -> Vec<String> {
    let mut v = Vec::new();
    let share_sum: f64 = mix.entries.iter().map(|e| e.share).sum();
    if (share_sum - 1.0).abs() > 1e-9 {
        v.push(format!("{}: domain shares sum to {share_sum}, expected 1", mix.name));
    }
    for e in &mix.entries {
        if !(0.0..=1.0).contains(&e.accelerable) {
            v.push(format!(
                "{}: domain {} accelerable fraction {} outside [0, 1]",
                mix.name, e.domain, e.accelerable
            ));
        }
        if e.share < 0.0 {
            v.push(format!("{}: domain {} has negative share {}", mix.name, e.domain, e.share));
        }
    }
    // A speedup of 1 saves nothing; reductions grow monotonically with
    // the hypothesis and cap at the total accelerable fraction.
    if mix.node_hour_reduction(MeSpeedup::Finite(1.0)).abs() > 1e-12 {
        v.push(format!("{}: speedup 1 must give zero reduction", mix.name));
    }
    let cap = mix.total_accelerable();
    if !(0.0..=1.0).contains(&cap) {
        v.push(format!("{}: total accelerable fraction {cap} outside [0, 1]", mix.name));
    }
    let mut prev = 0.0;
    for s in [1.0, 1.5, 2.0, 4.0, 8.0, 16.0, 128.0] {
        let r = mix.node_hour_reduction(MeSpeedup::Finite(s));
        if r + 1e-12 < prev {
            v.push(format!("{}: reduction not monotone at speedup {s}", mix.name));
        }
        if r > cap + 1e-12 {
            v.push(format!("{}: reduction at speedup {s} exceeds the s→∞ cap {cap}", mix.name));
        }
        prev = r;
    }
    v
}

/// Audit the extrapolation model: the three published machine mixes plus
/// the typed energy-accounting identities.
pub fn audit_model() -> Vec<String> {
    let mut v = Vec::new();
    for mix in [
        MachineMix::k_computer_default(),
        MachineMix::anl_default(),
        MachineMix::future_default(),
    ] {
        v.extend(audit_mix(&mix));
    }
    // BERT occupancy (Fig 4c input) must be a proper fraction.
    let occ = me_model::bert_occupancy_from_tc_comp(55.26);
    if !(occ > 0.0 && occ < 1.0) {
        v.push(format!("bert_occupancy_from_tc_comp(55.26) = {occ}, expected a fraction"));
    }
    // Dimensional identities of the typed energy API: a year of 1 W is
    // the Julian-year second count in joules, and saved power × window
    // recovers saved energy exactly.
    let year = MachineMix::annual_energy(Watts(1.0));
    if (year.0 - 365.25 * 24.0 * 3600.0).abs() > 1e-3 {
        v.push(format!("annual_energy(1 W) = {year}, expected one Julian year in joules"));
    }
    let mix = MachineMix::k_computer_default();
    let budget = MachineMix::annual_energy(Watts(12.66e6));
    let speedup = MeSpeedup::Finite(4.0);
    let saved = mix.energy_saved(budget, speedup);
    if saved > budget || saved < Joules::ZERO {
        v.push(format!("energy_saved {saved} outside [0, budget {budget}]"));
    }
    let window = Seconds(365.25 * 24.0 * 3600.0);
    let p = mix.power_saved(budget, window, speedup);
    let roundtrip = p * window;
    if ((roundtrip - saved) / saved).abs() > 1e-12 {
        v.push(format!("power_saved × window = {roundtrip} != energy_saved {saved}"));
    }
    v
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A deliberately-broken device spec: idle above TDP, a negative
    /// peak, zero bandwidth, and a duplicate peak entry.
    fn broken_device() -> Device {
        let mut d = catalog::v100();
        d.name = "Broken Fixture";
        d.tdp_w = 100.0;
        d.idle_w = 150.0;
        d.mem_bw_gbs = 0.0;
        d.peaks.push((EngineKind::Simd, NumericFormat::F64, -5.0));
        d
    }

    #[test]
    fn shipping_catalog_is_clean() {
        let v = audit_catalog();
        assert!(v.is_empty(), "catalog violations: {v:#?}");
    }

    #[test]
    fn shipping_model_is_clean() {
        let v = audit_model();
        assert!(v.is_empty(), "model violations: {v:#?}");
    }

    #[test]
    fn broken_fixture_trips_every_power_and_peak_check() {
        let v = audit_device(&broken_device());
        assert!(v.iter().any(|m| m.contains("exceeds TDP")), "{v:#?}");
        assert!(v.iter().any(|m| m.contains("must be positive") && m.contains("Gflop/s")), "{v:#?}");
        assert!(v.iter().any(|m| m.contains("bandwidth")), "{v:#?}");
        assert!(v.iter().any(|m| m.contains("duplicate peak")), "{v:#?}");
    }

    #[test]
    fn density_check_catches_a_wrong_die_size() {
        let mut d = catalog::v100();
        d.die_mm2 = Some(400.0); // true: 815 mm²
        let msg = check_density(&d, NumericFormat::F16, 153.4);
        assert!(msg.is_some_and(|m| m.contains("density mismatch")));
        // And the honest spec passes.
        assert!(check_density(&catalog::v100(), NumericFormat::F16, 153.4).is_none());
    }

    #[test]
    fn density_check_catches_a_missing_die() {
        let mut d = catalog::v100();
        d.die_mm2 = None;
        let msg = check_density(&d, NumericFormat::F16, 153.4);
        assert!(msg.is_some_and(|m| m.contains("cannot compute")));
    }

    #[test]
    fn memory_check_accepts_the_shipping_v100() {
        assert_eq!(check_memory_uses_bytes(&catalog::v100()), None);
    }

    #[test]
    fn mix_audit_catches_bad_shares_and_nonmonotonicity() {
        // Bypass MachineMix::new (which asserts) to build invalid data,
        // exactly what the auditor must catch if construction paths drift.
        let mix = MachineMix {
            name: "broken".into(),
            entries: vec![me_model::MixEntry {
                domain: "x".into(),
                representative: "y".into(),
                share: 0.7,
                accelerable: 1.4,
            }],
        };
        let v = audit_mix(&mix);
        assert!(v.iter().any(|m| m.contains("shares sum")), "{v:#?}");
        assert!(v.iter().any(|m| m.contains("outside [0, 1]")), "{v:#?}");
    }

    #[test]
    fn full_audit_is_clean() {
        let v = audit_all();
        assert!(v.is_empty(), "{v:#?}");
    }
}
