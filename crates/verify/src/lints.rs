//! Lint rules over masked source.
//!
//! Four rules, all operating on the output of [`crate::scan::mask_source`]
//! so comments, strings, and char literals can never match, and all
//! skipping `#[cfg(test)]` regions:
//!
//! | rule id            | forbids                                              |
//! |--------------------|------------------------------------------------------|
//! | `no-unwrap`        | `.unwrap()`, `.expect(`, `panic!` in library code    |
//! | `no-as-narrowing`  | bare `as f32` in the numeric kernels (`me-numerics`, |
//! |                    | `me-ozaki`) — use `narrow_f32_exact` instead         |
//! | `float-eq`         | `==`/`!=` against a nonzero float literal            |
//! | `missing-docs`     | public items without a doc comment                   |
//! | `no-unsafe`        | any `unsafe` in library code — every sanctioned site |
//! |                    | carries an exact budget in `verify.allow`            |
//! | `unsafe-safety`    | an `unsafe` without an adjacent `// SAFETY:` comment |
//! |                    | or `/// # Safety` doc section                        |
//!
//! Exact-zero comparisons (`x == 0.0`) are deliberately *not* flagged:
//! comparing against literal zero is IEEE-exact and idiomatic in the
//! numeric kernels (splitting loops, singularity checks). Everything
//! else goes through the committed allowlist (see [`crate::allow`]).

use crate::scan::MaskedSource;
use crate::{Diagnostic, Severity};

/// Paths (relative, `/`-separated) whose kernels must use checked
/// `f64 → f32` conversion instead of a bare `as` cast.
const NARROWING_SCOPES: [&str; 2] = ["crates/numerics/src/", "crates/ozaki/src/"];

/// Run every lint rule over one masked file. `rel_path` is the
/// `/`-separated path reported in diagnostics and used for scoping.
pub fn lint_file(rel_path: &str, src: &str, masked: &MaskedSource) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    no_unwrap(rel_path, masked, &mut diags);
    if NARROWING_SCOPES.iter().any(|s| rel_path.starts_with(s)) {
        no_as_narrowing(rel_path, masked, &mut diags);
    }
    float_eq(rel_path, masked, &mut diags);
    missing_docs(rel_path, src, masked, &mut diags);
    unsafe_rules(rel_path, src, masked, &mut diags);
    diags.sort_by_key(|d| d.line);
    diags
}

/// `no-unsafe` + `unsafe-safety`: every `unsafe` keyword in library code
/// is flagged (so each sanctioned site must hold an exact budget in the
/// committed allowlist), and independently each one must sit next to a
/// written safety argument — a `// SAFETY:` comment or a `/// # Safety`
/// doc section reachable by walking upward over comments, attributes,
/// blank lines, and continuation lines of the same statement.
fn unsafe_rules(path: &str, src: &str, m: &MaskedSource, diags: &mut Vec<Diagnostic>) {
    let bytes = m.masked.as_bytes();
    let masked_lines: Vec<&str> = m.masked.lines().collect();
    let src_lines: Vec<&str> = src.lines().collect();
    for at in find_all(&m.masked, "unsafe") {
        if m.in_test(at) {
            continue;
        }
        // Keyword boundary: not the tail/head of a longer identifier.
        if at > 0 && is_ident_byte(bytes[at - 1]) {
            continue;
        }
        let after = at + "unsafe".len();
        if after < bytes.len() && is_ident_byte(bytes[after]) {
            continue;
        }
        let line = m.line_of(at);
        diags.push(Diagnostic {
            file: path.to_string(),
            line,
            rule: "no-unsafe",
            severity: Severity::Error,
            message: "`unsafe` in library code; every site needs an exact verify.allow budget"
                .into(),
        });
        if !has_adjacent_safety(line - 1, &masked_lines, &src_lines) {
            diags.push(Diagnostic {
                file: path.to_string(),
                line,
                rule: "unsafe-safety",
                severity: Severity::Error,
                message: "`unsafe` without an adjacent `// SAFETY:` comment or `# Safety` doc"
                    .into(),
            });
        }
    }
}

/// Walk upward from the (0-based) line holding an `unsafe` keyword,
/// looking for a safety argument. Comment content is read from the
/// *original* source (comments are blanked in the masked text); the walk
/// continues over comments, attributes, blank lines, and lines that are
/// continuations of the statement containing the `unsafe` (no `;`/`{`/`}`
/// terminator yet), and stops at the previous statement boundary.
fn has_adjacent_safety(idx: usize, masked_lines: &[&str], src_lines: &[&str]) -> bool {
    let marks = |s: &str| s.contains("SAFETY:") || s.contains("# Safety");
    if src_lines.get(idx).copied().is_some_and(marks) {
        return true;
    }
    let mut l = idx;
    while l > 0 {
        l -= 1;
        if src_lines.get(l).copied().is_some_and(marks) {
            return true;
        }
        let code = masked_lines.get(l).map_or("", |s| s.trim());
        let boundary = code.ends_with(';') || code.ends_with('{') || code.ends_with('}');
        if boundary {
            return false;
        }
    }
    false
}

/// `no-unwrap`: `.unwrap()`, `.expect(`, and `panic!` are forbidden in
/// library code. `.unwrap_or_else(..)` and friends are fine (the match
/// requires the exact call), as are the assert macros.
fn no_unwrap(path: &str, m: &MaskedSource, diags: &mut Vec<Diagnostic>) {
    for (needle, what) in [
        (".unwrap()", "`.unwrap()`"),
        (".expect(", "`.expect(..)`"),
        ("panic!", "`panic!`"),
    ] {
        for at in find_all(&m.masked, needle) {
            if m.in_test(at) {
                continue;
            }
            // `panic!` must be a macro call, not the tail of an ident
            // (`should_panic!` does not exist, but be safe) and not a
            // path segment of the assert machinery.
            if needle == "panic!" && at > 0 && is_ident_byte(m.masked.as_bytes()[at - 1]) {
                continue;
            }
            diags.push(Diagnostic {
                file: path.to_string(),
                line: m.line_of(at),
                rule: "no-unwrap",
                severity: Severity::Error,
                message: format!("{what} in library code; return a Result or handle the None"),
            });
        }
    }
}

/// `no-as-narrowing`: a bare `as f32` silently rounds; the Ozaki-split
/// kernels rely on every narrowing being exact, so they must go through
/// `me_numerics::formats::narrow_f32_exact` (which checks the round-trip).
fn no_as_narrowing(path: &str, m: &MaskedSource, diags: &mut Vec<Diagnostic>) {
    let bytes = m.masked.as_bytes();
    for at in find_all(&m.masked, "as f32") {
        if m.in_test(at) {
            continue;
        }
        let before_ok = at == 0 || !is_ident_byte(bytes[at - 1]);
        let after = at + "as f32".len();
        let after_ok = after >= bytes.len() || !is_ident_byte(bytes[after]);
        if !(before_ok && after_ok) {
            continue;
        }
        diags.push(Diagnostic {
            file: path.to_string(),
            line: m.line_of(at),
            rule: "no-as-narrowing",
            severity: Severity::Error,
            message: "bare `as f32` narrowing in a numeric kernel; use narrow_f32_exact".into(),
        });
    }
}

/// `float-eq`: `==`/`!=` where either operand is a nonzero float
/// literal. Zero comparisons are exact and allowed; everything else is
/// almost always a rounding bug waiting to happen.
fn float_eq(path: &str, m: &MaskedSource, diags: &mut Vec<Diagnostic>) {
    let bytes = m.masked.as_bytes();
    for op in ["==", "!="] {
        for at in find_all(&m.masked, op) {
            if m.in_test(at) {
                continue;
            }
            // Skip `<=`, `>=`, pattern `=>`: require a clean operator.
            if at > 0 && matches!(bytes[at - 1], b'<' | b'>' | b'=' | b'!') {
                continue;
            }
            if at + op.len() < bytes.len() && bytes[at + op.len()] == b'=' {
                continue;
            }
            let lhs = token_before(bytes, at);
            let rhs = token_after(bytes, at + op.len());
            if is_nonzero_float_literal(&lhs) || is_nonzero_float_literal(&rhs) {
                diags.push(Diagnostic {
                    file: path.to_string(),
                    line: m.line_of(at),
                    rule: "float-eq",
                    severity: Severity::Error,
                    message: format!(
                        "exact float comparison `{} {op} {}`; compare with a tolerance",
                        if lhs.is_empty() { "_" } else { &lhs },
                        if rhs.is_empty() { "_" } else { &rhs },
                    ),
                });
            }
        }
    }
}

/// `missing-docs`: a `pub` item (fn, struct, enum, trait, mod, const,
/// static, type, macro) with no doc comment or `#[doc]` attribute above
/// it. `pub use` re-exports and `pub(crate)`-restricted items are out of
/// scope.
fn missing_docs(path: &str, src: &str, m: &MaskedSource, diags: &mut Vec<Diagnostic>) {
    const ITEM_STARTS: [&str; 11] = [
        "pub fn ",
        "pub unsafe fn ",
        "pub async fn ",
        "pub const fn ",
        "pub struct ",
        "pub enum ",
        "pub trait ",
        "pub mod ",
        "pub const ",
        "pub static ",
        "pub type ",
    ];
    let masked_lines: Vec<&str> = m.masked.lines().collect();
    let src_lines: Vec<&str> = src.lines().collect();
    for (idx, line) in masked_lines.iter().enumerate() {
        let trimmed = line.trim_start();
        let Some(item) = ITEM_STARTS.iter().find(|s| trimmed.starts_with(**s)) else {
            continue;
        };
        let offset = m.line_starts.get(idx).copied().unwrap_or(0);
        if m.in_test(offset) {
            continue;
        }
        let rest = &trimmed[item.len()..];
        // `pub mod x;` — an out-of-line module: its docs are the `//!`
        // header of its own file, not a comment at the declaration.
        if *item == "pub mod " && rest.trim_end().ends_with(';') {
            continue;
        }
        // `pub struct $name(..)` inside a macro_rules! template: docs
        // arrive through a `$(#[$meta])*` passthrough at expansion time.
        if rest.starts_with('$') {
            continue;
        }
        if documented_above(idx, &masked_lines, &src_lines, &m.doc_lines) {
            continue;
        }
        let name = rest
            .split(|c: char| !c.is_alphanumeric() && c != '_')
            .next()
            .unwrap_or("");
        diags.push(Diagnostic {
            file: path.to_string(),
            line: idx + 1,
            rule: "missing-docs",
            severity: Severity::Warning,
            message: format!("public item `{name}` has no doc comment"),
        });
    }
}

/// Walk upward from the item line over attributes, blank lines, and
/// masked-out ordinary comments, looking for a doc comment or a
/// `#[doc` attribute.
fn documented_above(
    item_line: usize,
    masked_lines: &[&str],
    src_lines: &[&str],
    doc_lines: &[bool],
) -> bool {
    let mut l = item_line;
    while l > 0 {
        l -= 1;
        if doc_lines.get(l).copied().unwrap_or(false) {
            return true;
        }
        let masked = masked_lines.get(l).map_or("", |s| s.trim());
        let original = src_lines.get(l).map_or("", |s| s.trim());
        if masked.starts_with("#[doc") {
            return true;
        }
        let is_attr_ish = masked.starts_with("#[")
            || masked.starts_with(')')
            || masked.ends_with(']')
            || masked.ends_with(',');
        let is_masked_comment = masked.is_empty() && !original.is_empty();
        let is_blank = original.is_empty();
        if is_attr_ish || is_masked_comment || is_blank {
            continue;
        }
        return false;
    }
    false
}

/// All byte offsets of `needle` in `hay`.
fn find_all(hay: &str, needle: &str) -> Vec<usize> {
    let mut out = Vec::new();
    let mut from = 0;
    while let Some(p) = hay[from..].find(needle) {
        out.push(from + p);
        from += p + needle.len();
    }
    out
}

fn is_ident_byte(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

/// The operand token ending just before byte `at` (skipping spaces):
/// contiguous identifier/number/path/field characters.
fn token_before(bytes: &[u8], at: usize) -> String {
    let mut end = at;
    while end > 0 && bytes[end - 1] == b' ' {
        end -= 1;
    }
    let mut start = end;
    while start > 0 && is_token_byte(bytes[start - 1]) {
        start -= 1;
    }
    String::from_utf8_lossy(&bytes[start..end]).into_owned()
}

/// The operand token starting just after byte `from` (skipping spaces).
fn token_after(bytes: &[u8], from: usize) -> String {
    let mut start = from;
    while start < bytes.len() && bytes[start] == b' ' {
        start += 1;
    }
    // A leading sign belongs to a literal operand.
    let mut end = start;
    if end < bytes.len() && bytes[end] == b'-' {
        end += 1;
    }
    while end < bytes.len() && is_token_byte(bytes[end]) {
        end += 1;
    }
    String::from_utf8_lossy(&bytes[start..end]).into_owned()
}

fn is_token_byte(b: u8) -> bool {
    b.is_ascii_alphanumeric() || matches!(b, b'_' | b'.' | b':')
}

/// Is `tok` a float literal with a nonzero value? Accepts `1.5`,
/// `2.0e-3`, `1.0_f64`, `3f32`; rejects idents, integers, and all-zero
/// literals like `0.0` / `-0.0` / `0.` .
fn is_nonzero_float_literal(tok: &str) -> bool {
    let t = tok.strip_prefix('-').unwrap_or(tok);
    let t = t
        .strip_suffix("_f64")
        .or_else(|| t.strip_suffix("_f32"))
        .or_else(|| t.strip_suffix("f64"))
        .or_else(|| t.strip_suffix("f32"))
        .unwrap_or(t);
    if t.is_empty() || !t.starts_with(|c: char| c.is_ascii_digit()) {
        return false;
    }
    let has_float_shape = t.contains('.') || t.contains('e') || t.contains('E') || t.len() < tok.trim_start_matches('-').len();
    if !has_float_shape {
        return false;
    }
    // Mantissa digits all zero → an exact-zero literal, which is fine.
    let mantissa = t.split(['e', 'E']).next().unwrap_or(t);
    mantissa.chars().any(|c| c.is_ascii_digit() && c != '0')
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scan::mask_source;

    fn run(path: &str, src: &str) -> Vec<Diagnostic> {
        lint_file(path, src, &mask_source(src))
    }

    #[test]
    fn unwrap_expect_panic_flagged_in_library_code() {
        let src = "fn f() {\n    x.unwrap();\n    y.expect(\"msg\");\n    panic!(\"boom\");\n}\n";
        let d = run("crates/x/src/lib.rs", src);
        let rules: Vec<_> = d.iter().filter(|d| d.rule == "no-unwrap").map(|d| d.line).collect();
        assert_eq!(rules, vec![2, 3, 4]);
    }

    #[test]
    fn unwrap_or_else_and_tests_are_clean() {
        let src = "fn f() {\n    x.unwrap_or_else(|| 0);\n    y.unwrap_or(1);\n}\n#[cfg(test)]\nmod tests {\n    fn t() { z.unwrap(); }\n}\n";
        let d = run("crates/x/src/lib.rs", src);
        assert!(d.iter().all(|d| d.rule != "no-unwrap"), "{d:?}");
    }

    #[test]
    fn unwrap_in_comment_or_string_is_clean() {
        let src = "// call .unwrap() here\nfn f() { let s = \".unwrap()\"; }\n";
        let d = run("crates/x/src/lib.rs", src);
        assert!(d.iter().all(|d| d.rule != "no-unwrap"), "{d:?}");
    }

    #[test]
    fn as_f32_flagged_only_in_kernel_scopes() {
        let src = "fn f(x: f64) -> f32 { x as f32 }\n";
        let in_scope = run("crates/numerics/src/lib.rs", src);
        assert_eq!(in_scope.iter().filter(|d| d.rule == "no-as-narrowing").count(), 1);
        let out_of_scope = run("crates/engine/src/lib.rs", src);
        assert!(out_of_scope.iter().all(|d| d.rule != "no-as-narrowing"));
    }

    #[test]
    fn float_eq_flags_nonzero_literals_only() {
        let src = "fn f(a: f64) {\n    if a == 0.1 {}\n    if a == 0.0 {}\n    if 2.5 != a {}\n    if a == b {}\n    if n == 3 {}\n}\n";
        let d = run("crates/x/src/lib.rs", src);
        let lines: Vec<_> = d.iter().filter(|d| d.rule == "float-eq").map(|d| d.line).collect();
        assert_eq!(lines, vec![2, 4], "{d:?}");
    }

    #[test]
    fn float_eq_ignores_le_ge_and_match_arms() {
        let src = "fn f(a: f64) -> f64 {\n    if a <= 1.5 { return 0.0 }\n    match x { 1 => 2.0, _ => 3.0 }\n}\n";
        let d = run("crates/x/src/lib.rs", src);
        assert!(d.iter().all(|d| d.rule != "float-eq"), "{d:?}");
    }

    #[test]
    fn missing_docs_flags_undocumented_pub_items() {
        let src = "/// Documented.\npub fn good() {}\n\npub fn bad() {}\n\npub(crate) fn internal() {}\npub use std::fmt;\n";
        let d = run("crates/x/src/lib.rs", src);
        let hits: Vec<_> = d.iter().filter(|d| d.rule == "missing-docs").collect();
        assert_eq!(hits.len(), 1, "{d:?}");
        assert_eq!(hits[0].line, 4);
        assert!(hits[0].message.contains("`bad`"));
    }

    #[test]
    fn missing_docs_skips_mod_decls_and_macro_templates() {
        let src = "pub mod out_of_line;\nmacro_rules! m {\n    ($name:ident) => {\n        pub struct $name(f64);\n    };\n}\npub mod inline {}\n";
        let d = run("crates/x/src/lib.rs", src);
        let hits: Vec<_> = d.iter().filter(|d| d.rule == "missing-docs").collect();
        assert_eq!(hits.len(), 1, "{d:?}");
        assert!(hits[0].message.contains("`inline`"), "inline mod still checked");
    }

    #[test]
    fn missing_docs_sees_through_attributes_and_blank_lines() {
        let src = "/// Doc.\n#[derive(Debug)]\n#[repr(C)]\npub struct S;\n\n/// Doc two.\n\npub enum E { A }\n";
        let d = run("crates/x/src/lib.rs", src);
        assert!(d.iter().all(|d| d.rule != "missing-docs"), "{d:?}");
    }

    #[test]
    fn unsafe_flagged_and_safety_comment_checked() {
        // A bare unsafe block: both rules fire on the same line.
        let src = "fn f() {\n    let p = unsafe { *ptr };\n}\n";
        let d = run("crates/x/src/lib.rs", src);
        assert_eq!(d.iter().filter(|d| d.rule == "no-unsafe").count(), 1, "{d:?}");
        assert_eq!(d.iter().filter(|d| d.rule == "unsafe-safety").count(), 1, "{d:?}");
        assert!(d.iter().all(|d| d.rule != "unsafe-safety" || d.line == 2));

        // A commented site satisfies unsafe-safety but still counts for
        // the no-unsafe budget.
        let src = "fn f() {\n    // SAFETY: ptr is valid for the whole call.\n    let p = unsafe { *ptr };\n}\n";
        let d = run("crates/x/src/lib.rs", src);
        assert_eq!(d.iter().filter(|d| d.rule == "no-unsafe").count(), 1, "{d:?}");
        assert!(d.iter().all(|d| d.rule != "unsafe-safety"), "{d:?}");
    }

    #[test]
    fn unsafe_safety_sees_through_attrs_docs_and_continuations() {
        // `# Safety` doc section above attributes on an unsafe fn.
        let src = "/// Kernel.\n///\n/// # Safety\n///\n/// Caller checks CPUID.\n#[target_feature(enable = \"avx2\")]\nunsafe fn k() {}\n";
        let d = run("crates/x/src/lib.rs", src);
        assert!(d.iter().all(|d| d.rule != "unsafe-safety"), "{d:?}");

        // SAFETY comment above a multi-line statement whose later line
        // holds the `unsafe` keyword.
        let src = "fn f() {\n    let q = r;\n    // SAFETY: lifetime erased, pointee outlives the call.\n    let obj: &'static X =\n        unsafe { std::mem::transmute(o) };\n}\n";
        let d = run("crates/x/src/lib.rs", src);
        assert!(d.iter().all(|d| d.rule != "unsafe-safety"), "{d:?}");

        // A statement boundary between comment and unsafe breaks adjacency.
        let src = "fn f() {\n    // SAFETY: stale argument.\n    let q = r;\n    let p = unsafe { *ptr };\n}\n";
        let d = run("crates/x/src/lib.rs", src);
        assert_eq!(d.iter().filter(|d| d.rule == "unsafe-safety").count(), 1, "{d:?}");
    }

    #[test]
    fn unsafe_in_tests_strings_and_idents_is_clean() {
        let src = "fn f() {\n    let unsafely = 1;\n    let s = \"unsafe { }\";\n}\n#[cfg(test)]\nmod tests {\n    fn t() { unsafe { x() } }\n}\n";
        let d = run("crates/x/src/lib.rs", src);
        assert!(d.iter().all(|d| d.rule != "no-unsafe" && d.rule != "unsafe-safety"), "{d:?}");
    }

    #[test]
    fn nonzero_float_literal_classifier() {
        for yes in ["0.1", "2.5", "1.0e-9", "-3.25", "1.5_f64", "100.0"] {
            assert!(is_nonzero_float_literal(yes), "{yes}");
        }
        for no in ["0.0", "-0.0", "0.", "0.000", "0e0", "x", "a.b", "3", "f64::NAN", ""] {
            assert!(!is_nonzero_float_literal(no), "{no}");
        }
    }
}
