//! The committed allowlist.
//!
//! Format: one entry per line, `path rule-id max-count`, `#` starts a
//! comment, blank lines ignored. `path` is the `/`-separated path
//! relative to the workspace root, exactly as diagnostics print it.
//!
//! ```text
//! # narrow_f32_exact's own implementation is the sanctioned cast site
//! crates/numerics/src/formats.rs no-as-narrowing 1
//! ```
//!
//! An entry suppresses up to `max-count` diagnostics of that rule in
//! that file, lowest line first; any excess is still reported. Counts
//! are deliberately exact rather than open-ended so a regression that
//! adds one more violation to an already-allowlisted file still fails.

use crate::Diagnostic;

/// One parsed allowlist entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AllowEntry {
    /// `/`-separated path relative to the workspace root.
    pub path: String,
    /// Rule id the entry applies to.
    pub rule: String,
    /// Maximum number of diagnostics suppressed for (path, rule).
    pub max_count: usize,
    /// 1-based line of the entry in the allowlist file (0 for entries
    /// constructed in code); staleness warnings point here.
    pub line: usize,
}

/// Parse allowlist text. Returns the entries or a message naming the
/// first malformed line.
pub fn parse_allowlist(text: &str) -> Result<Vec<AllowEntry>, String> {
    let mut entries = Vec::new();
    for (idx, raw) in text.lines().enumerate() {
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let mut parts = line.split_whitespace();
        let (Some(path), Some(rule), Some(count)) = (parts.next(), parts.next(), parts.next())
        else {
            return Err(format!("allowlist line {}: expected `path rule-id max-count`", idx + 1));
        };
        if parts.next().is_some() {
            return Err(format!("allowlist line {}: trailing fields", idx + 1));
        }
        let max_count: usize = count
            .parse()
            .map_err(|_| format!("allowlist line {}: bad count `{count}`", idx + 1))?;
        entries.push(AllowEntry {
            path: path.to_string(),
            rule: rule.to_string(),
            max_count,
            line: idx + 1,
        });
    }
    Ok(entries)
}

/// Apply the allowlist: suppress up to `max_count` diagnostics per
/// (path, rule), lowest line first; return the survivors (still sorted
/// by file then line).
pub fn apply_allowlist(diags: Vec<Diagnostic>, entries: &[AllowEntry]) -> Vec<Diagnostic> {
    apply_allowlist_counted(diags, entries).0
}

/// Like [`apply_allowlist`], additionally returning how many
/// diagnostics each entry actually suppressed (same order as
/// `entries`). The staleness check compares that usage against
/// `max_count`: budgets must shrink with the code.
pub fn apply_allowlist_counted(
    mut diags: Vec<Diagnostic>,
    entries: &[AllowEntry],
) -> (Vec<Diagnostic>, Vec<usize>) {
    diags.sort_by(|a, b| a.file.cmp(&b.file).then(a.line.cmp(&b.line)));
    let mut budgets: Vec<(&AllowEntry, usize)> = entries.iter().map(|e| (e, e.max_count)).collect();
    let mut used = vec![0usize; entries.len()];
    diags.retain(|d| {
        for (i, (entry, left)) in budgets.iter_mut().enumerate() {
            if entry.path == d.file && entry.rule == d.rule && *left > 0 {
                *left -= 1;
                used[i] += 1;
                return false;
            }
        }
        true
    });
    (diags, used)
}

/// Rewrite allowlist text so every entry's count matches `actual`
/// (keyed by `(path, rule)`). Entries whose actual count is zero are
/// dropped; comments, blank lines, and inline notes are preserved.
/// This backs `me-verify --update-allow`.
pub fn rewrite_counts(
    text: &str,
    actual: &std::collections::BTreeMap<(String, String), usize>,
) -> String {
    let mut out = String::new();
    for raw in text.lines() {
        let code = raw.split('#').next().unwrap_or("").trim();
        let mut parts = code.split_whitespace();
        let (path, rule) = match (parts.next(), parts.next(), parts.next()) {
            (Some(p), Some(r), Some(_)) => (p, r),
            // Not an entry line (comment/blank/malformed): keep as-is.
            _ => {
                out.push_str(raw);
                out.push('\n');
                continue;
            }
        };
        let count = actual.get(&(path.to_string(), rule.to_string())).copied().unwrap_or(0);
        if count == 0 {
            continue; // budget fully paid down: drop the entry
        }
        let comment = raw.find('#').map(|i| &raw[i..]);
        out.push_str(&format!("{path} {rule} {count}"));
        if let Some(c) = comment {
            out.push_str("  ");
            out.push_str(c);
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Severity;

    fn diag(file: &str, line: usize, rule: &'static str) -> Diagnostic {
        Diagnostic {
            file: file.into(),
            line,
            rule,
            severity: Severity::Error,
            message: "m".into(),
        }
    }

    #[test]
    fn parses_entries_comments_and_blanks() {
        let text = "# header\n\ncrates/a/src/lib.rs no-unwrap 3  # inline note\ncrates/b/src/x.rs float-eq 1\n";
        let e = parse_allowlist(text).expect("parses");
        assert_eq!(e.len(), 2);
        assert_eq!(
            e[0],
            AllowEntry {
                path: "crates/a/src/lib.rs".into(),
                rule: "no-unwrap".into(),
                max_count: 3,
                line: 3,
            }
        );
    }

    #[test]
    fn rejects_malformed_lines() {
        assert!(parse_allowlist("just-a-path\n").is_err());
        assert!(parse_allowlist("p r not-a-number\n").is_err());
        assert!(parse_allowlist("p r 1 extra\n").is_err());
    }

    #[test]
    fn suppresses_up_to_count_lowest_lines_first() {
        let diags = vec![diag("f.rs", 30, "no-unwrap"), diag("f.rs", 10, "no-unwrap"), diag("f.rs", 20, "no-unwrap")];
        let entries = parse_allowlist("f.rs no-unwrap 2\n").expect("parses");
        let left = apply_allowlist(diags, &entries);
        assert_eq!(left.len(), 1);
        assert_eq!(left[0].line, 30, "the excess violation (highest line) survives");
    }

    #[test]
    fn other_rules_and_files_unaffected() {
        let diags = vec![diag("f.rs", 1, "no-unwrap"), diag("f.rs", 2, "float-eq"), diag("g.rs", 3, "no-unwrap")];
        let entries = parse_allowlist("f.rs no-unwrap 99\n").expect("parses");
        let left = apply_allowlist(diags, &entries);
        assert_eq!(left.len(), 2);
    }

    #[test]
    fn counted_apply_reports_per_entry_usage() {
        let diags = vec![diag("f.rs", 1, "no-unwrap"), diag("f.rs", 2, "no-unwrap")];
        let entries = parse_allowlist("f.rs no-unwrap 5\ng.rs float-eq 2\n").expect("parses");
        let (left, used) = apply_allowlist_counted(diags, &entries);
        assert!(left.is_empty());
        assert_eq!(used, vec![2, 0], "budget of 5 only consumed 2; unused entry consumed 0");
    }

    #[test]
    fn rewrite_counts_shrinks_drops_and_preserves_comments() {
        let text = "# header comment\n\nf.rs no-unwrap 5  # five sites\ng.rs float-eq 2\n";
        let mut actual = std::collections::BTreeMap::new();
        actual.insert(("f.rs".to_string(), "no-unwrap".to_string()), 3);
        // g.rs's violations are gone entirely.
        let new = rewrite_counts(text, &actual);
        assert_eq!(new, "# header comment\n\nf.rs no-unwrap 3  # five sites\n");
    }
}
