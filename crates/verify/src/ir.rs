//! A lightweight token-tree/IR layer over [`crate::scan`]: function
//! items, brace structure, and `// me-verify:` annotations.
//!
//! The concurrency and determinism rules ([`crate::locks`],
//! [`crate::envs`], [`crate::hotpath`], [`crate::fma`]) need more than
//! "is this byte code?" — they need to know *which function* a byte
//! belongs to, where that function's body ends, and what the author
//! promised about it. This module recovers exactly that much structure
//! from the masked text:
//!
//! - every `fn` item: name, header line, brace-matched body span;
//! - every matched `{ … }` pair (guard-scope reasoning in the
//!   lock-order rule);
//! - every `// me-verify: <keys>` annotation, attached to the function
//!   it precedes.
//!
//! ## Annotation grammar
//!
//! A line comment `// me-verify: key[, key …]`, placed either on the
//! lines directly above a `fn` item (doc comments, attributes, other
//! comments, and blank lines may intervene — the same adjacency rule as
//! the `unsafe-safety` walker) or trailing on the header line itself.
//! Recognized keys:
//!
//! - `hot` — the function body must stay allocation-free
//!   (checked by the `no-alloc-hot` rule);
//! - `env-startup` — the function is a sanctioned startup-time
//!   environment reader (exempts it from the `env-read` rule).
//!
//! Unknown keys and annotations that attach to no function are reported
//! as `bad-annotation` warnings: a typo must not silently disable a
//! rule.
//!
//! Like the scanner, this is deliberately not a parser. It finds `fn`
//! keywords and balances delimiters on masked text, which is exactly
//! enough for intra-procedural rules and degrades safely (a function it
//! fails to see is simply not checked — and the negative fixtures in CI
//! pin the cases that must be seen).

use crate::scan::MaskedSource;
use crate::{Diagnostic, Severity};

/// Annotation key marking a function body as an allocation-free hot
/// path.
pub const KEY_HOT: &str = "hot";
/// Annotation key sanctioning startup-time environment reads.
pub const KEY_ENV_STARTUP: &str = "env-startup";

const KNOWN_KEYS: [&str; 2] = [KEY_HOT, KEY_ENV_STARTUP];
const ANN_MARKER: &str = "me-verify:";

/// One `fn` item recovered from the masked text.
#[derive(Debug, Clone)]
pub struct FnInfo {
    /// The identifier after `fn`.
    pub name: String,
    /// Byte offset of the `fn` keyword.
    pub fn_offset: usize,
    /// 1-based line of the `fn` keyword.
    pub header_line: usize,
    /// Body byte range, from the opening `{` to just past the matching
    /// `}`; `None` for bodyless declarations (trait method signatures).
    pub body: Option<(usize, usize)>,
    /// `me-verify:` annotation keys attached to this function.
    pub keys: Vec<String>,
}

impl FnInfo {
    /// Does this function carry the given annotation key?
    pub fn has_key(&self, key: &str) -> bool {
        self.keys.iter().any(|k| k == key)
    }
}

/// One `// me-verify:` annotation line.
#[derive(Debug, Clone)]
struct AnnLine {
    /// 0-based line index.
    line_idx: usize,
    /// Byte offset of the `//` that starts the comment.
    offset: usize,
    /// Parsed keys (verbatim, including unknown ones).
    keys: Vec<String>,
    /// Did the attachment walk reach a `fn` item?
    attached: bool,
}

/// Function items, brace pairs, and annotations for one file.
#[derive(Debug, Clone)]
pub struct FileIr {
    /// All recovered `fn` items, in source order.
    pub fns: Vec<FnInfo>,
    /// All matched `{ … }` pairs on masked text, as byte offsets of the
    /// opener and its closer, sorted by opener.
    pub braces: Vec<(usize, usize)>,
    anns: Vec<AnnLine>,
}

impl FileIr {
    /// Build the IR for one file. `src` is the original text (the
    /// annotation comments live there — the masked copy blanks them),
    /// `masked` its scan result.
    pub fn build(src: &str, masked: &MaskedSource) -> FileIr {
        let braces = brace_pairs(masked.masked.as_bytes());
        let mut anns = find_annotations(src, masked);
        let mut fns = find_fns(masked, &braces);
        attach_annotations(src, masked, &mut fns, &mut anns);
        FileIr { fns, braces, anns }
    }

    /// The innermost function whose body contains byte `offset`.
    pub fn enclosing_fn(&self, offset: usize) -> Option<&FnInfo> {
        self.fns
            .iter()
            .filter(|f| f.body.is_some_and(|(open, close)| open <= offset && offset < close))
            .min_by_key(|f| {
                let (open, close) = f.body.unwrap_or((0, usize::MAX));
                close - open
            })
    }

    /// End (exclusive, just past `}`) of the innermost brace block
    /// containing `offset`; the file length when none does.
    pub fn block_end(&self, offset: usize, file_len: usize) -> usize {
        self.braces
            .iter()
            .filter(|&&(open, close)| open < offset && offset <= close)
            .min_by_key(|&&(open, close)| close - open)
            .map_or(file_len, |&(_, close)| close + 1)
    }

    /// Diagnostics for malformed annotations: unknown keys and
    /// annotations that attach to no function. Annotations inside
    /// `#[cfg(test)]` regions are exempt (test helpers may demo them).
    pub fn annotation_diagnostics(&self, rel_path: &str, masked: &MaskedSource) -> Vec<Diagnostic> {
        let mut out = Vec::new();
        for ann in &self.anns {
            if masked.in_test(ann.offset) {
                continue;
            }
            for key in &ann.keys {
                if !KNOWN_KEYS.contains(&key.as_str()) {
                    out.push(Diagnostic {
                        file: rel_path.to_string(),
                        line: ann.line_idx + 1,
                        rule: "bad-annotation",
                        severity: Severity::Warning,
                        message: format!(
                            "unknown `me-verify:` key `{key}` (known: {})",
                            KNOWN_KEYS.join(", ")
                        ),
                    });
                }
            }
            if !ann.attached {
                out.push(Diagnostic {
                    file: rel_path.to_string(),
                    line: ann.line_idx + 1,
                    rule: "bad-annotation",
                    severity: Severity::Warning,
                    message: "`me-verify:` annotation does not precede a `fn` item".to_string(),
                });
            }
        }
        out
    }
}

/// All matched `{ … }` pairs on masked bytes, sorted by opener offset.
fn brace_pairs(bytes: &[u8]) -> Vec<(usize, usize)> {
    let mut stack = Vec::new();
    let mut pairs = Vec::new();
    for (i, &b) in bytes.iter().enumerate() {
        match b {
            b'{' => stack.push(i),
            b'}' => {
                if let Some(open) = stack.pop() {
                    pairs.push((open, i));
                }
            }
            _ => {}
        }
    }
    pairs.sort_unstable();
    pairs
}

fn is_ident_byte(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

/// Find every `fn` item on masked text: keyword, name, body span.
fn find_fns(masked: &MaskedSource, braces: &[(usize, usize)]) -> Vec<FnInfo> {
    let text = &masked.masked;
    let bytes = text.as_bytes();
    let n = bytes.len();
    let mut fns = Vec::new();
    let mut from = 0usize;
    while let Some(p) = text[from..].find("fn") {
        let at = from + p;
        from = at + 2;
        // Ident boundaries: reject `info`, `fnord`, `Fn`.
        if at > 0 && is_ident_byte(bytes[at - 1]) {
            continue;
        }
        if at + 2 < n && is_ident_byte(bytes[at + 2]) {
            continue;
        }
        // Name: next token must be an identifier (fn *types* like
        // `fn(usize) -> T` have none and are skipped).
        let mut j = at + 2;
        while j < n && bytes[j].is_ascii_whitespace() {
            j += 1;
        }
        let name_start = j;
        while j < n && is_ident_byte(bytes[j]) {
            j += 1;
        }
        if j == name_start {
            continue;
        }
        let name = text[name_start..j].to_string();
        // Body: first `{` at delimiter depth 0 after the signature;
        // a depth-0 `;` first means a bodyless declaration.
        let mut depth = 0usize;
        let mut body = None;
        let mut k = j;
        while k < n {
            match bytes[k] {
                b'(' | b'[' => depth += 1,
                b')' | b']' => depth = depth.saturating_sub(1),
                b'{' if depth == 0 => {
                    let close = braces
                        .iter()
                        .find(|&&(open, _)| open == k)
                        .map(|&(_, close)| close);
                    body = close.map(|c| (k, c + 1));
                    break;
                }
                b';' if depth == 0 => break,
                _ => {}
            }
            k += 1;
        }
        fns.push(FnInfo {
            name,
            fn_offset: at,
            header_line: masked.line_of(at),
            body,
            keys: Vec::new(),
        });
    }
    fns
}

/// Find every `// me-verify:` annotation comment. Works against the
/// original text (comments are blanked in the masked copy) but uses the
/// scanner's comment mask to reject look-alikes inside string literals.
fn find_annotations(src: &str, masked: &MaskedSource) -> Vec<AnnLine> {
    let mut anns = Vec::new();
    for (idx, &line_start) in masked.line_starts.iter().enumerate() {
        let line_end = masked
            .line_starts
            .get(idx + 1)
            .map_or(src.len(), |&next| next.saturating_sub(1));
        let line = &src[line_start..line_end.max(line_start)];
        // Doc comments are prose, not annotations.
        if masked.doc_lines.get(idx).copied().unwrap_or(false) {
            continue;
        }
        // The marker must sit inside a real comment, not inside a
        // string literal whose contents merely look like an annotation
        // (both are blanked in the masked copy; the comment mask tells
        // them apart).
        let Some(mark) = line
            .match_indices(ANN_MARKER)
            .map(|(p, _)| p)
            .find(|&p| masked.in_comment(line_start + p))
        else {
            continue;
        };
        let keys_text = &line[mark + ANN_MARKER.len()..];
        let keys: Vec<String> = keys_text
            .split(',')
            .map(|k| k.trim().to_string())
            .filter(|k| !k.is_empty())
            .collect();
        anns.push(AnnLine { line_idx: idx, offset: line_start + mark, keys, attached: false });
    }
    anns
}

/// Attach each annotation to the `fn` item it precedes (or shares a
/// header line with), walking down over doc comments, attributes, other
/// comments, and blank lines.
fn attach_annotations(
    src: &str,
    masked: &MaskedSource,
    fns: &mut [FnInfo],
    anns: &mut [AnnLine],
) {
    for ann in anns.iter_mut() {
        // Trailing form: annotation on a fn header line.
        if let Some(f) = fns
            .iter_mut()
            .find(|f| f.header_line == ann.line_idx + 1 && f.fn_offset < ann.offset)
        {
            f.keys.extend(ann.keys.iter().cloned());
            ann.attached = true;
            continue;
        }
        // Preceding form: walk down from the annotation line until the
        // first line that is neither blank, comment, nor attribute; it
        // must hold a `fn` keyword at or before the name position.
        let mut l = ann.line_idx + 1;
        let line_count = masked.line_starts.len();
        while l < line_count {
            let start = masked.line_starts[l];
            let end = masked.line_starts.get(l + 1).map_or(src.len(), |&e| e);
            let code = masked.masked[start..end.min(src.len())].trim();
            if code.is_empty() {
                // Blank or pure-comment line (doc comments included).
                l += 1;
                continue;
            }
            if code.starts_with("#[") || code.starts_with("#!") {
                l += 1;
                continue;
            }
            // Visibility + fn keyword live on this line for every fn in
            // this codebase; accept when the line's fn starts here.
            if let Some(f) = fns.iter_mut().find(|f| f.header_line == l + 1) {
                f.keys.extend(ann.keys.iter().cloned());
                ann.attached = true;
            }
            break;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scan::mask_source;

    fn ir_of(src: &str) -> FileIr {
        FileIr::build(src, &mask_source(src))
    }

    #[test]
    fn finds_fns_with_bodies_and_names() {
        let src = "pub fn alpha(x: usize) -> usize { x + 1 }\nfn beta<T: Fn(usize)>(f: T) where T: Sized { f(2); }\ntrait T { fn gamma(&self) -> u32; }\n";
        let ir = ir_of(src);
        let names: Vec<_> = ir.fns.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, ["alpha", "beta", "gamma"]);
        assert!(ir.fns[0].body.is_some());
        assert!(ir.fns[1].body.is_some(), "generics with Fn bounds do not confuse body search");
        assert!(ir.fns[2].body.is_none(), "trait signature has no body");
    }

    #[test]
    fn fn_pointer_types_are_not_items() {
        let src = "type Cb = fn(usize) -> u32;\nfn real() {}\n";
        let ir = ir_of(src);
        let names: Vec<_> = ir.fns.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, ["real"]);
    }

    #[test]
    fn enclosing_fn_picks_the_innermost() {
        let src = "fn outer() {\n    fn inner() { let x = 1; }\n    let y = 2;\n}\n";
        let ir = ir_of(src);
        let x_at = src.find("let x").expect("present");
        let y_at = src.find("let y").expect("present");
        assert_eq!(ir.enclosing_fn(x_at).map(|f| f.name.as_str()), Some("inner"));
        assert_eq!(ir.enclosing_fn(y_at).map(|f| f.name.as_str()), Some("outer"));
    }

    #[test]
    fn annotations_attach_over_docs_and_attrs() {
        let src = "/// Doc.\n// me-verify: hot\n#[inline]\npub fn fast() { work(); }\n\n// me-verify: env-startup\nfn reader() {}\nfn plain() {}\n";
        let ir = ir_of(src);
        let fast = ir.fns.iter().find(|f| f.name == "fast").expect("fast");
        assert!(fast.has_key(KEY_HOT));
        let reader = ir.fns.iter().find(|f| f.name == "reader").expect("reader");
        assert!(reader.has_key(KEY_ENV_STARTUP));
        let plain = ir.fns.iter().find(|f| f.name == "plain").expect("plain");
        assert!(plain.keys.is_empty());
    }

    #[test]
    fn trailing_annotation_attaches_to_its_header_line() {
        let src = "pub fn quick() { // me-verify: hot\n    tight();\n}\n";
        let ir = ir_of(src);
        assert!(ir.fns[0].has_key(KEY_HOT));
    }

    #[test]
    fn annotation_text_inside_strings_is_ignored() {
        let src = "fn f() { let s = \"// me-verify: hot\"; use_it(s); }\n";
        let ir = ir_of(src);
        assert!(ir.fns[0].keys.is_empty());
        let m = mask_source(src);
        assert!(ir.annotation_diagnostics("f.rs", &m).is_empty());
    }

    #[test]
    fn unknown_keys_and_orphans_warn() {
        let src = "// me-verify: hott\nfn f() {}\n\n// me-verify: hot\nstatic X: u32 = 1;\n";
        let m = mask_source(src);
        let ir = FileIr::build(src, &m);
        let diags = ir.annotation_diagnostics("f.rs", &m);
        assert_eq!(diags.len(), 2);
        assert!(diags.iter().all(|d| d.rule == "bad-annotation"));
        assert!(diags[0].message.contains("hott"));
        assert!(diags[1].message.contains("does not precede"));
    }

    #[test]
    fn block_end_is_innermost() {
        let src = "fn f() { if c { let g = 1; } tail(); }";
        let ir = ir_of(src);
        let g_at = src.find("let g").expect("present");
        let inner_close = src.rfind("} tail").expect("present");
        assert_eq!(ir.block_end(g_at, src.len()), inner_close + 1);
    }
}
