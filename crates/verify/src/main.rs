//! `me-verify`: run the static-analysis and model-audit pass over the
//! workspace.
//!
//! ```text
//! me-verify [--root DIR] [--allowlist FILE] [--deny-warnings]
//! ```
//!
//! Exit status is nonzero on any model-audit violation, any
//! error-severity lint diagnostic that the allowlist does not cover,
//! or — under `--deny-warnings` — any diagnostic at all.

use std::path::PathBuf;
use std::process::ExitCode;

use me_verify::{parse_allowlist, verify_tree, Severity};

struct Options {
    root: PathBuf,
    allowlist: Option<PathBuf>,
    deny_warnings: bool,
}

const USAGE: &str = "usage: me-verify [--root DIR] [--allowlist FILE] [--deny-warnings]

  --root DIR        workspace root to scan (default: .)
  --allowlist FILE  allowlist path (default: <root>/verify.allow)
  --deny-warnings   treat warning-severity diagnostics as errors";

fn parse_args() -> Result<Options, String> {
    let mut opts = Options { root: PathBuf::from("."), allowlist: None, deny_warnings: false };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => {
                opts.root = args.next().map(PathBuf::from).ok_or("--root needs a value")?;
            }
            "--allowlist" => {
                opts.allowlist =
                    Some(args.next().map(PathBuf::from).ok_or("--allowlist needs a value")?);
            }
            "--deny-warnings" => opts.deny_warnings = true,
            "--help" | "-h" => {
                println!("{USAGE}");
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    Ok(opts)
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(e) => {
            eprintln!("me-verify: {e}\n{USAGE}");
            return ExitCode::from(2);
        }
    };
    let allow_path = opts.allowlist.clone().unwrap_or_else(|| opts.root.join("verify.allow"));
    let allow_text = match std::fs::read_to_string(&allow_path) {
        Ok(t) => t,
        // A missing default allowlist just means "no exemptions".
        Err(_) if opts.allowlist.is_none() => String::new(),
        Err(e) => {
            eprintln!("me-verify: cannot read {}: {e}", allow_path.display());
            return ExitCode::from(2);
        }
    };
    let entries = match parse_allowlist(&allow_text) {
        Ok(e) => e,
        Err(e) => {
            eprintln!("me-verify: {}: {e}", allow_path.display());
            return ExitCode::from(2);
        }
    };
    let report = match verify_tree(&opts.root, &entries) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("me-verify: scan failed: {e}");
            return ExitCode::from(2);
        }
    };
    // A run that scanned nothing is a misconfiguration (typo'd --root),
    // not a clean workspace; passing it would green-light anything.
    if report.files_scanned == 0 {
        eprintln!("me-verify: no Rust sources under {} — wrong --root?", opts.root.display());
        return ExitCode::from(2);
    }

    for d in &report.diagnostics {
        let tag = match d.severity {
            Severity::Error => "error",
            Severity::Warning => "warning",
        };
        println!("{d} [{tag}]");
    }
    for v in &report.audit_violations {
        println!("audit: {v}");
    }
    println!(
        "me-verify: {} files scanned, {} diagnostics ({} allowlisted), {} audit violations",
        report.files_scanned,
        report.diagnostics.len(),
        report.suppressed,
        report.audit_violations.len()
    );
    if report.failed(opts.deny_warnings) {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
