//! `me-verify`: run the static-analysis and model-audit pass over the
//! workspace.
//!
//! ```text
//! me-verify [--root DIR] [--allowlist FILE] [--deny-warnings]
//!           [--format text|json|sarif] [--json-out FILE] [--sarif-out FILE]
//!           [--update-allow] [--explain RULE]
//! ```
//!
//! Exit status is nonzero on any model-audit violation, any
//! error-severity lint diagnostic that the allowlist does not cover,
//! or — under `--deny-warnings` — any diagnostic at all. Misconfig
//! (bad flags, unreadable allowlist, empty scan) exits 2.

use std::path::PathBuf;
use std::process::ExitCode;

use me_verify::{output, parse_allowlist, verify_tree, Severity};

#[derive(PartialEq, Clone, Copy)]
enum Format {
    Text,
    Json,
    Sarif,
}

struct Options {
    root: PathBuf,
    allowlist: Option<PathBuf>,
    deny_warnings: bool,
    format: Format,
    json_out: Option<PathBuf>,
    sarif_out: Option<PathBuf>,
    update_allow: bool,
    explain: Option<String>,
}

const USAGE: &str = "usage: me-verify [--root DIR] [--allowlist FILE] [--deny-warnings]
                 [--format text|json|sarif] [--json-out FILE] [--sarif-out FILE]
                 [--update-allow] [--explain RULE]

  --root DIR        workspace root to scan (default: .)
  --allowlist FILE  allowlist path (default: <root>/verify.allow)
  --deny-warnings   treat warning-severity diagnostics as errors
  --format FMT      stdout rendering: text (default), json, or sarif
  --json-out FILE   additionally write the JSON report to FILE
  --sarif-out FILE  additionally write the SARIF 2.1.0 report to FILE
  --update-allow    rewrite the allowlist's counts to the tree's actual
                    violation counts (stale entries shrink or drop) and exit
  --explain RULE    print what a rule checks and why, then exit";

fn parse_args() -> Result<Options, String> {
    let mut opts = Options {
        root: PathBuf::from("."),
        allowlist: None,
        deny_warnings: false,
        format: Format::Text,
        json_out: None,
        sarif_out: None,
        update_allow: false,
        explain: None,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => {
                opts.root = args.next().map(PathBuf::from).ok_or("--root needs a value")?;
            }
            "--allowlist" => {
                opts.allowlist =
                    Some(args.next().map(PathBuf::from).ok_or("--allowlist needs a value")?);
            }
            "--deny-warnings" => opts.deny_warnings = true,
            "--format" => {
                let v = args.next().ok_or("--format needs a value")?;
                opts.format = match v.as_str() {
                    "text" => Format::Text,
                    "json" => Format::Json,
                    "sarif" => Format::Sarif,
                    other => return Err(format!("unknown format `{other}`")),
                };
            }
            "--json-out" => {
                opts.json_out =
                    Some(args.next().map(PathBuf::from).ok_or("--json-out needs a value")?);
            }
            "--sarif-out" => {
                opts.sarif_out =
                    Some(args.next().map(PathBuf::from).ok_or("--sarif-out needs a value")?);
            }
            "--update-allow" => opts.update_allow = true,
            "--explain" => {
                opts.explain = Some(args.next().ok_or("--explain needs a rule id")?);
            }
            "--help" | "-h" => {
                println!("{USAGE}");
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    Ok(opts)
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(e) => {
            eprintln!("me-verify: {e}\n{USAGE}");
            return ExitCode::from(2);
        }
    };
    if let Some(rule) = &opts.explain {
        return match output::explain(rule) {
            Some(text) => {
                println!("{text}");
                ExitCode::SUCCESS
            }
            None => {
                eprintln!(
                    "me-verify: unknown rule `{rule}`; known rules: {}",
                    output::rule_ids().join(", ")
                );
                ExitCode::from(2)
            }
        };
    }
    let allow_path = opts.allowlist.clone().unwrap_or_else(|| opts.root.join("verify.allow"));
    let allow_text = match std::fs::read_to_string(&allow_path) {
        Ok(t) => t,
        // A missing default allowlist just means "no exemptions".
        Err(_) if opts.allowlist.is_none() => String::new(),
        Err(e) => {
            eprintln!("me-verify: cannot read {}: {e}", allow_path.display());
            return ExitCode::from(2);
        }
    };
    let entries = match parse_allowlist(&allow_text) {
        Ok(e) => e,
        Err(e) => {
            eprintln!("me-verify: {}: {e}", allow_path.display());
            return ExitCode::from(2);
        }
    };
    if opts.update_allow {
        return update_allow(&opts, &allow_path, &allow_text);
    }
    let report = match verify_tree(&opts.root, &entries) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("me-verify: scan failed: {e}");
            return ExitCode::from(2);
        }
    };
    // A run that scanned nothing is a misconfiguration (typo'd --root),
    // not a clean workspace; passing it would green-light anything.
    if report.files_scanned == 0 {
        eprintln!("me-verify: no Rust sources under {} — wrong --root?", opts.root.display());
        return ExitCode::from(2);
    }

    let json = output::to_json(&report, opts.deny_warnings);
    let sarif = output::to_sarif(&report);
    for (path, body) in
        [(&opts.json_out, &json), (&opts.sarif_out, &sarif)]
    {
        if let Some(p) = path {
            if let Err(e) = std::fs::write(p, body) {
                eprintln!("me-verify: cannot write {}: {e}", p.display());
                return ExitCode::from(2);
            }
        }
    }

    match opts.format {
        Format::Json => print!("{json}"),
        Format::Sarif => print!("{sarif}"),
        Format::Text => {
            for d in &report.diagnostics {
                let tag = match d.severity {
                    Severity::Error => "error",
                    Severity::Warning => "warning",
                };
                println!("{d} [{tag}]");
            }
            for v in &report.audit_violations {
                println!("audit: {v}");
            }
            println!(
                "me-verify: {} files scanned, {} diagnostics ({} allowlisted), {} audit violations",
                report.files_scanned,
                report.diagnostics.len(),
                report.suppressed,
                report.audit_violations.len()
            );
        }
    }
    if report.failed(opts.deny_warnings) {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

/// `--update-allow`: recompute raw violation counts and rewrite the
/// allowlist in place so every budget is exact again.
fn update_allow(opts: &Options, allow_path: &std::path::Path, allow_text: &str) -> ExitCode {
    let counts = match me_verify::raw_counts(&opts.root) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("me-verify: scan failed: {e}");
            return ExitCode::from(2);
        }
    };
    let new_text = me_verify::allow::rewrite_counts(allow_text, &counts);
    if new_text == allow_text {
        println!("me-verify: {} is already exact", allow_path.display());
        return ExitCode::SUCCESS;
    }
    if let Err(e) = std::fs::write(allow_path, &new_text) {
        eprintln!("me-verify: cannot write {}: {e}", allow_path.display());
        return ExitCode::from(2);
    }
    println!("me-verify: rewrote {} with exact counts", allow_path.display());
    ExitCode::SUCCESS
}
