//! The `lock-order` rule: a workspace-wide lock-acquisition graph.
//!
//! The parallel stack keeps a deliberately simple locking story — one
//! `Mutex` + two `Condvar`s in `me-par::pool`, one `Mutex`/`Condvar`
//! pair per shard in `me-serve::scheduler`, short-scope sharded guards
//! in the `me-trace` collector (DESIGN §11). This rule mechanizes that
//! story:
//!
//! 1. index every `Mutex` acquisition site (`recv.lock()`,
//!    `recv.try_lock()`, and the collector's free-function `lock(expr)`
//!    helper) in every library source;
//! 2. track guard scopes intra-procedurally (a `let`-bound guard lives
//!    from its acquisition to the end of its innermost block, or to an
//!    explicit `drop(guard)`);
//! 3. record an edge *held → acquired* for every acquisition made while
//!    another guard is live, then flag every edge that participates in
//!    a cycle of the workspace-wide graph (including reacquisition
//!    self-edges);
//! 4. flag any `Condvar::wait`/`wait_timeout`/`wait_while` whose guard
//!    argument releases one lock while a *different* lock is still
//!    held — the parked thread would keep that other lock pinned.
//!
//! Lock identity is the last path segment of the receiver (so
//! `self.shared.lock()` and `shared.lock()` are the same node,
//! `ctx.queue.lock()` is `queue`). That is a *name-based* abstraction:
//! two distinct locks that share a field name alias into one node
//! (conservative for cycles either way: the rule may miss an aliased
//! cycle, never invents an order that holds). The analysis is
//! intra-procedural — a guard passed into a callee is not tracked — and
//! `#[cfg(test)]` regions are skipped like every other rule.

use crate::ir::FileIr;
use crate::scan::MaskedSource;
use crate::{Diagnostic, Severity};

/// One "acquired `acquired` while holding `held`" observation.
#[derive(Debug, Clone)]
pub struct LockEdge {
    /// File of the inner acquisition.
    pub file: String,
    /// 1-based line of the inner acquisition.
    pub line: usize,
    /// Lock already held at that point.
    pub held: String,
    /// Lock being acquired.
    pub acquired: String,
}

/// One "waited on a Condvar while holding an unrelated lock"
/// observation. These are violations on their own, cycle or not.
#[derive(Debug, Clone)]
pub struct WaitViolation {
    /// File of the wait call.
    pub file: String,
    /// 1-based line of the wait call.
    pub line: usize,
    /// The Condvar's name (last path segment).
    pub condvar: String,
    /// Lock the wait releases (the guard argument's lock).
    pub released: String,
    /// The unrelated lock still held across the wait.
    pub held: String,
}

/// Everything the lock scanner extracted from one file.
#[derive(Debug, Clone, Default)]
pub struct FileLocks {
    /// Nested-acquisition edges.
    pub edges: Vec<LockEdge>,
    /// Condvar waits holding an unrelated lock.
    pub waits: Vec<WaitViolation>,
}

/// A guard binding: `let NAME = …lock()…;` and the span it is live.
#[derive(Debug, Clone)]
struct Guard {
    name: String,
    lock: String,
    /// Offset of the acquisition needle (the guard is live after this).
    acquire_at: usize,
    /// Offset past which the guard is dead (innermost block end or an
    /// explicit `drop(name)`).
    scope_end: usize,
}

/// An acquisition site: offset of the needle plus the lock's name.
#[derive(Debug, Clone)]
struct Acquire {
    offset: usize,
    lock: String,
}

fn is_ident_byte(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

/// Collect lock edges and wait violations for one file.
pub fn collect_file(rel_path: &str, masked: &MaskedSource, ir: &FileIr) -> FileLocks {
    let mut out = FileLocks::default();
    for f in &ir.fns {
        let Some((open, close)) = f.body else { continue };
        if masked.in_test(f.fn_offset) {
            continue;
        }
        analyze_body(rel_path, masked, ir, open, close, &mut out);
    }
    out
}

fn analyze_body(
    rel_path: &str,
    masked: &MaskedSource,
    ir: &FileIr,
    open: usize,
    close: usize,
    out: &mut FileLocks,
) {
    let text = &masked.masked;
    let bytes = text.as_bytes();
    let acquires = find_acquires(text, open, close);
    let guards = find_guards(text, ir, open, close, &acquires);

    // Edges: every acquisition made while some other guard is live.
    for a in &acquires {
        for g in guards.iter().filter(|g| g.acquire_at < a.offset && a.offset < g.scope_end) {
            out.edges.push(LockEdge {
                file: rel_path.to_string(),
                line: masked.line_of(a.offset),
                held: g.lock.clone(),
                acquired: a.lock.clone(),
            });
        }
    }

    // Waits: `cv.wait(guard)` / `cv.wait_timeout(guard, …)` /
    // `cv.wait_while(guard, …)` with another guard of a different lock
    // still live.
    for needle in [".wait(", ".wait_timeout(", ".wait_while("] {
        let mut from = open;
        while let Some(p) = text[from..close].find(needle) {
            let at = from + p;
            from = at + needle.len();
            let paren = at + needle.len() - 1;
            let Some(arg) = first_arg_ident(bytes, paren) else { continue };
            // The argument must resolve to a known guard (filters
            // non-Condvar `.wait()` APIs); pick the innermost live one.
            let Some(guard) = guards
                .iter()
                .filter(|g| g.name == arg && g.acquire_at < at && at < g.scope_end)
                .max_by_key(|g| g.acquire_at)
            else {
                continue;
            };
            let condvar = receiver_last_segment(bytes, at).unwrap_or_else(|| "?".to_string());
            for other in guards
                .iter()
                .filter(|g| g.acquire_at < at && at < g.scope_end && g.lock != guard.lock)
            {
                out.waits.push(WaitViolation {
                    file: rel_path.to_string(),
                    line: masked.line_of(at),
                    condvar: condvar.clone(),
                    released: guard.lock.clone(),
                    held: other.lock.clone(),
                });
            }
        }
    }
}

/// All acquisition sites in `[open, close)`: `recv.lock(`,
/// `recv.try_lock(`, and free-function `lock(expr)`.
fn find_acquires(text: &str, open: usize, close: usize) -> Vec<Acquire> {
    let bytes = text.as_bytes();
    let mut sites = Vec::new();
    for needle in [".lock(", ".try_lock("] {
        let mut from = open;
        while let Some(p) = text[from..close].find(needle) {
            let at = from + p;
            from = at + needle.len();
            if let Some(lock) = receiver_last_segment(bytes, at) {
                sites.push(Acquire { offset: at, lock });
            }
        }
    }
    // Free-function form `lock(&SOME_MUTEX)` (the me-trace helper):
    // `lock` must not be a method call or the tail of an identifier.
    let mut from = open;
    while let Some(p) = text[from..close].find("lock(") {
        let at = from + p;
        from = at + "lock(".len();
        if at > open {
            let prev = bytes[at - 1];
            if is_ident_byte(prev) || prev == b'.' {
                continue;
            }
        }
        if let Some(lock) = free_lock_arg(bytes, at + "lock".len()) {
            sites.push(Acquire { offset: at, lock });
        }
    }
    sites.sort_by_key(|a| a.offset);
    sites
}

/// All guard bindings in `[open, close)`: a `let` whose initializer's
/// first acquisition is one of `acquires`.
fn find_guards(
    text: &str,
    ir: &FileIr,
    open: usize,
    close: usize,
    acquires: &[Acquire],
) -> Vec<Guard> {
    let bytes = text.as_bytes();
    let mut guards: Vec<Guard> = Vec::new();
    let mut from = open;
    while let Some(p) = text[from..close].find("let") {
        let at = from + p;
        from = at + 3;
        if (at > 0 && is_ident_byte(bytes[at - 1])) || (at + 3 < close && is_ident_byte(bytes[at + 3]))
        {
            continue;
        }
        let Some(name) = pattern_first_ident(bytes, at + 3, close) else { continue };
        // `let Some(x) = …` / `let Ok(x) = …` patterns never bind a raw
        // guard in this codebase; the RHS-acquisition filter below also
        // rejects them, so no special case is needed.
        let Some(eq) = find_assign_eq(bytes, at, close) else { continue };
        let end = stmt_end(bytes, eq + 1, close);
        let Some(acq) = acquires.iter().find(|a| a.offset > eq && a.offset < end) else {
            continue;
        };
        // The acquisition must belong to *this* binding's initializer
        // expression, not to an inner statement of a block expression
        // (`let i = { let st = x.lock(); … };` binds a value, and the
        // guard `st` dies at the inner block's close).
        if bytes[eq..acq.offset].iter().any(|&b| b == b'{' || b == b';') {
            continue;
        }
        // Scope: innermost block around the `let`, shortened by an
        // explicit `drop(name)`.
        let mut scope_end = ir.block_end(at, text.len()).min(close);
        let drop_needle = format!("drop({name})");
        let mut dfrom = end;
        while let Some(dp) = text[dfrom..scope_end].find(&drop_needle) {
            let dat = dfrom + dp;
            dfrom = dat + drop_needle.len();
            if dat > 0 && is_ident_byte(bytes[dat - 1]) {
                continue;
            }
            scope_end = dat;
            break;
        }
        guards.push(Guard { name, lock: acq.lock.clone(), acquire_at: acq.offset, scope_end });
    }
    guards
}

/// First identifier of a `let` pattern: skips `mut`, enters a tuple
/// pattern's first position.
fn pattern_first_ident(bytes: &[u8], mut i: usize, close: usize) -> Option<String> {
    loop {
        while i < close && bytes[i].is_ascii_whitespace() {
            i += 1;
        }
        if i < close && bytes[i] == b'(' {
            i += 1;
            continue;
        }
        let start = i;
        while i < close && is_ident_byte(bytes[i]) {
            i += 1;
        }
        if i == start {
            return None;
        }
        let word = std::str::from_utf8(&bytes[start..i]).ok()?;
        if word == "mut" {
            continue;
        }
        return Some(word.to_string());
    }
}

/// The `=` that starts the initializer of a `let` at `at` (skips `==`,
/// `=>`, and type-annotation colons don't matter).
fn find_assign_eq(bytes: &[u8], at: usize, close: usize) -> Option<usize> {
    let mut i = at;
    let mut depth = 0usize;
    while i < close {
        match bytes[i] {
            b'(' | b'[' | b'<' => depth += 1,
            b')' | b']' | b'>' => depth = depth.saturating_sub(1),
            b';' | b'{' => return None,
            b'=' if depth == 0 => {
                let prev_op = i > 0 && matches!(bytes[i - 1], b'=' | b'<' | b'>' | b'!');
                let next_op = bytes.get(i + 1).is_some_and(|&b| b == b'=' || b == b'>');
                if !prev_op && !next_op {
                    return Some(i);
                }
            }
            _ => {}
        }
        i += 1;
    }
    None
}

/// End of the statement starting at `from`: the first `;` at relative
/// delimiter depth 0, or the `}` that closes the enclosing block.
fn stmt_end(bytes: &[u8], from: usize, close: usize) -> usize {
    let mut depth = 0usize;
    let mut i = from;
    while i < close {
        match bytes[i] {
            b'(' | b'[' | b'{' => depth += 1,
            b')' | b']' => {
                if depth == 0 {
                    return i;
                }
                depth -= 1;
            }
            b'}' => {
                if depth == 0 {
                    return i;
                }
                depth -= 1;
            }
            b';' if depth == 0 => return i,
            _ => {}
        }
        i += 1;
    }
    close
}

/// Last path segment of the method receiver ending just before the `.`
/// of a `.lock(`/`.wait(` needle at `at` (e.g. `self.shared` → `shared`,
/// `cells[i]` → `cells`, `env_lock()` → `env_lock`).
fn receiver_last_segment(bytes: &[u8], at: usize) -> Option<String> {
    let mut i = at; // bytes[at] == b'.'
    let mut seg_end = None;
    loop {
        if i == 0 {
            break;
        }
        let b = bytes[i - 1];
        if b == b')' || b == b']' {
            // Skip the balanced group backwards.
            let (hi, lo) = if b == b')' { (b')', b'(') } else { (b']', b'[') };
            let mut depth = 0usize;
            while i > 0 {
                let c = bytes[i - 1];
                if c == hi {
                    depth += 1;
                } else if c == lo {
                    depth -= 1;
                    if depth == 0 {
                        i -= 1;
                        break;
                    }
                }
                i -= 1;
            }
            continue;
        }
        if is_ident_byte(b) {
            if seg_end.is_none() {
                seg_end = Some(i);
            }
            i -= 1;
            continue;
        }
        if b == b'.' {
            if let Some(end) = seg_end {
                return ident_at(bytes, i, end);
            }
            // A call/index group directly before the dot (`f().lock()`):
            // keep walking to find the call's name.
            i -= 1;
            continue;
        }
        if b == b':' {
            // `::` path separator: the segment so far is the name.
            break;
        }
        break;
    }
    seg_end.and_then(|end| ident_at(bytes, i, end))
}

fn ident_at(bytes: &[u8], start: usize, end: usize) -> Option<String> {
    if start >= end {
        return None;
    }
    std::str::from_utf8(&bytes[start..end]).ok().map(|s| s.to_string())
}

/// Lock name for the free-function form `lock(EXPR)` with the paren at
/// `paren`: the first identifier of the argument, skipping `&`/`mut`
/// (`lock(&THREAD_NAMES)` → `THREAD_NAMES`, `lock(shard_for(tid))` →
/// `shard_for`).
fn free_lock_arg(bytes: &[u8], paren: usize) -> Option<String> {
    first_arg_ident(bytes, paren)
}

/// First identifier inside the parens opening at `paren`.
fn first_arg_ident(bytes: &[u8], paren: usize) -> Option<String> {
    let mut i = paren + 1;
    let n = bytes.len();
    while i < n && (bytes[i].is_ascii_whitespace() || bytes[i] == b'&' || bytes[i] == b'*') {
        i += 1;
    }
    let mut start = i;
    while i < n && is_ident_byte(bytes[i]) {
        i += 1;
    }
    if std::str::from_utf8(&bytes[start..i]) == Ok("mut") {
        while i < n && bytes[i].is_ascii_whitespace() {
            i += 1;
        }
        start = i;
        while i < n && is_ident_byte(bytes[i]) {
            i += 1;
        }
    }
    ident_at(bytes, start, i)
}

/// Fold per-file observations into diagnostics: every wait violation,
/// plus every edge that participates in a cycle of the workspace-wide
/// lock graph (self-edges included).
pub fn lock_order(files: &[FileLocks]) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let edges: Vec<&LockEdge> = files.iter().flat_map(|f| f.edges.iter()).collect();
    let adj: Vec<(&str, &str)> =
        edges.iter().map(|e| (e.held.as_str(), e.acquired.as_str())).collect();
    for e in &edges {
        let cyclic = if e.held == e.acquired {
            true
        } else {
            reaches(&adj, &e.acquired, &e.held)
        };
        if !cyclic {
            continue;
        }
        let message = if e.held == e.acquired {
            format!("reacquiring `{}` while a guard for it is still live", e.held)
        } else {
            format!(
                "acquiring `{}` while holding `{}` — the reverse order also occurs, so these \
                 locks form an order cycle",
                e.acquired, e.held
            )
        };
        out.push(Diagnostic {
            file: e.file.clone(),
            line: e.line,
            rule: "lock-order",
            severity: Severity::Error,
            message,
        });
    }
    for w in files.iter().flat_map(|f| f.waits.iter()) {
        out.push(Diagnostic {
            file: w.file.clone(),
            line: w.line,
            rule: "lock-order",
            severity: Severity::Error,
            message: format!(
                "`{}.wait` releases `{}` but `{}` stays held — a parked thread keeps `{}` locked",
                w.condvar, w.released, w.held, w.held
            ),
        });
    }
    out.sort_by(|a, b| a.file.cmp(&b.file).then(a.line.cmp(&b.line)));
    out
}

/// Is `to` reachable from `from` over the edge list?
fn reaches(adj: &[(&str, &str)], from: &str, to: &str) -> bool {
    let mut stack = vec![from];
    let mut seen = vec![from];
    while let Some(node) = stack.pop() {
        for &(a, b) in adj {
            if a == node && !seen.contains(&b) {
                if b == to {
                    return true;
                }
                seen.push(b);
                stack.push(b);
            }
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::FileIr;
    use crate::scan::mask_source;

    fn analyze(src: &str) -> FileLocks {
        let m = mask_source(src);
        let ir = FileIr::build(src, &m);
        collect_file("f.rs", &m, &ir)
    }

    #[test]
    fn nested_acquisition_records_an_edge() {
        let src = "fn f(a: &M, b: &M) { let ga = a.lock(); let gb = b.lock(); use2(ga, gb); }";
        let l = analyze(src);
        assert_eq!(l.edges.len(), 1);
        assert_eq!((l.edges[0].held.as_str(), l.edges[0].acquired.as_str()), ("a", "b"));
    }

    #[test]
    fn scoped_guard_does_not_leak_past_its_block() {
        let src = "fn f(a: &M, b: &M) { { let ga = a.lock(); touch(ga); } let gb = b.lock(); }";
        let l = analyze(src);
        assert!(l.edges.is_empty(), "guard died at its block close: {:?}", l.edges);
    }

    #[test]
    fn explicit_drop_ends_the_guard() {
        let src = "fn f(a: &M, b: &M) { let ga = a.lock(); drop(ga); let gb = b.lock(); }";
        let l = analyze(src);
        assert!(l.edges.is_empty(), "drop(ga) ended the guard: {:?}", l.edges);
    }

    #[test]
    fn dotted_receivers_use_last_segment() {
        let src = "fn f(&self) { let g = self.shared.state.lock(); let h = self.other.lock(); }";
        let l = analyze(src);
        assert_eq!(l.edges.len(), 1);
        assert_eq!((l.edges[0].held.as_str(), l.edges[0].acquired.as_str()), ("state", "other"));
    }

    #[test]
    fn free_function_lock_helper_is_tracked() {
        let src = "fn f() { let s = lock(&NAMES); let t = lock(shard_for(tid)); }";
        let l = analyze(src);
        assert_eq!(l.edges.len(), 1);
        assert_eq!(
            (l.edges[0].held.as_str(), l.edges[0].acquired.as_str()),
            ("NAMES", "shard_for")
        );
    }

    #[test]
    fn wait_with_foreign_guard_held_is_flagged() {
        let src = "fn f(&self) { let g = self.submit.lock(); let mut st = self.state.lock(); \
                   while !st.done { st = self.cv.wait(st); } drop(g); }";
        let l = analyze(src);
        assert_eq!(l.waits.len(), 1);
        let w = &l.waits[0];
        assert_eq!((w.released.as_str(), w.held.as_str(), w.condvar.as_str()), ("state", "submit", "cv"));
    }

    #[test]
    fn wait_releasing_its_own_lock_is_clean() {
        let src = "fn f(&self) { let mut st = self.state.lock(); \
                   while !st.done { st = self.cv.wait(st); } }";
        let l = analyze(src);
        assert!(l.waits.is_empty());
    }

    #[test]
    fn cycles_are_flagged_across_functions() {
        let src = "fn ab(a: &M, b: &M) { let ga = a.lock(); let gb = b.lock(); }\n\
                   fn ba(a: &M, b: &M) { let gb = b.lock(); let ga = a.lock(); }";
        let l = analyze(src);
        let d = lock_order(&[l]);
        assert_eq!(d.len(), 2, "both directions of the cycle are flagged: {d:?}");
        assert!(d.iter().all(|x| x.rule == "lock-order"));
    }

    #[test]
    fn consistent_order_is_clean() {
        let src = "fn ab(a: &M, b: &M) { let ga = a.lock(); let gb = b.lock(); }\n\
                   fn ab2(a: &M, b: &M) { let ga = a.lock(); let gb = b.lock(); }";
        let l = analyze(src);
        assert_eq!(l.edges.len(), 2);
        assert!(lock_order(&[l]).is_empty(), "a consistent partial order has no cycles");
    }

    #[test]
    fn reacquisition_is_a_self_edge() {
        let src = "fn f(a: &M) { let ga = a.lock(); let gb = a.lock(); }";
        let l = analyze(src);
        let d = lock_order(&[l]);
        assert_eq!(d.len(), 1);
        assert!(d[0].message.contains("reacquiring"));
    }

    #[test]
    fn test_regions_are_skipped() {
        let src = "#[cfg(test)]\nmod tests {\n fn f(a: &M, b: &M) { let ga = a.lock(); let gb = b.lock(); }\n}\n";
        let l = analyze(src);
        assert!(l.edges.is_empty());
    }
}
