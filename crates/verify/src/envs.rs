//! The `env-read` rule: environment access only at sanctioned startup
//! readers.
//!
//! DESIGN §10's determinism contract says process environment is read
//! exactly once, at startup, by named readers (`resolve_threads`,
//! `resolve_shards`, `KernelDispatch::global`); everything downstream
//! takes explicit parameters. Tests that must mutate the environment
//! hold `me_par::env_lock()` and are out of scope here because every
//! rule skips `#[cfg(test)]` regions.
//!
//! This rule mechanizes the contract: any `env::var` / `env::var_os` /
//! `env::vars` / `env::set_var` / `env::remove_var` call in library
//! code is an error unless its enclosing function carries the
//! `// me-verify: env-startup` annotation ([`crate::ir`]). `env::args`
//! and `env::temp_dir` are not configuration reads and are not flagged.

use crate::ir::{FileIr, KEY_ENV_STARTUP};
use crate::scan::MaskedSource;
use crate::{Diagnostic, Severity};

const NEEDLES: [&str; 5] =
    ["env::var(", "env::var_os(", "env::vars(", "env::set_var(", "env::remove_var("];

fn is_ident_byte(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

/// Flag every unsanctioned environment access in one file.
pub fn env_read(rel_path: &str, masked: &MaskedSource, ir: &FileIr) -> Vec<Diagnostic> {
    let text = &masked.masked;
    let bytes = text.as_bytes();
    let mut out = Vec::new();
    for needle in NEEDLES {
        let mut from = 0usize;
        while let Some(p) = text[from..].find(needle) {
            let at = from + p;
            from = at + needle.len();
            // `env` must be a path segment of its own (`my_env::var` is
            // somebody else's module).
            if at > 0 && is_ident_byte(bytes[at - 1]) {
                continue;
            }
            if masked.in_test(at) {
                continue;
            }
            if ir.enclosing_fn(at).is_some_and(|f| f.has_key(KEY_ENV_STARTUP)) {
                continue;
            }
            let call = &needle[..needle.len() - 1];
            out.push(Diagnostic {
                file: rel_path.to_string(),
                line: masked.line_of(at),
                rule: "env-read",
                severity: Severity::Error,
                message: format!(
                    "`{call}` outside a sanctioned startup reader — read the environment once \
                     at startup in a `// me-verify: env-startup` fn and pass the value down"
                ),
            });
        }
    }
    out.sort_by_key(|d| d.line);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::FileIr;
    use crate::scan::mask_source;

    fn run(src: &str) -> Vec<Diagnostic> {
        let m = mask_source(src);
        let ir = FileIr::build(src, &m);
        env_read("f.rs", &m, &ir)
    }

    #[test]
    fn stray_env_var_is_flagged() {
        let src = "fn f() -> Option<String> { std::env::var(\"ME_X\").ok() }";
        let d = run(src);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].rule, "env-read");
    }

    #[test]
    fn annotated_startup_reader_is_sanctioned() {
        let src = "// me-verify: env-startup\nfn resolve() -> Option<String> { std::env::var(\"ME_X\").ok() }";
        assert!(run(src).is_empty());
    }

    #[test]
    fn set_and_remove_are_flagged_args_are_not() {
        let src = "fn f() { std::env::set_var(\"A\", \"1\"); std::env::remove_var(\"A\"); \
                   let _ = std::env::args(); let _ = std::env::temp_dir(); }";
        let d = run(src);
        assert_eq!(d.len(), 2, "{d:?}");
    }

    #[test]
    fn test_regions_are_exempt() {
        let src = "#[cfg(test)]\nmod tests { fn t() { std::env::set_var(\"A\", \"1\"); } }";
        assert!(run(src).is_empty());
    }

    #[test]
    fn foreign_env_module_is_not_flagged() {
        let src = "fn f() { my_env::var(\"A\"); }";
        assert!(run(src).is_empty());
    }
}
