//! The `no-alloc-hot` rule: annotated hot paths stay allocation-free.
//!
//! PR 4 proved (and `linalg.pack_scratch_grow` counts at runtime) that
//! the packed-GEMM steady state performs zero heap allocations; the
//! worker loop, per-batch serve dispatch, and trace record paths make
//! the same promise implicitly. This rule makes the promise checkable:
//! a function annotated `// me-verify: hot` ([`crate::ir`]) must not
//! call any of the allocating constructors/adaptors below. The list is
//! textual and deliberately blunt — a hot path that genuinely needs an
//! allocation should not be annotated (or should take a caller-provided
//! scratch, as `with_pack_scratch` does).

use crate::ir::{FileIr, KEY_HOT};
use crate::scan::MaskedSource;
use crate::{Diagnostic, Severity};

/// `(needle, display name)`; needles starting with an identifier byte
/// additionally require a non-identifier byte before the match.
const BANNED: [(&str, &str); 10] = [
    ("Vec::new", "Vec::new"),
    ("vec!", "vec!"),
    ("Box::new", "Box::new"),
    ("format!", "format!"),
    (".to_vec(", ".to_vec()"),
    (".collect(", ".collect()"),
    ("String::new", "String::new"),
    (".to_string(", ".to_string()"),
    (".to_owned(", ".to_owned()"),
    ("with_capacity(", "with_capacity()"),
];

fn is_ident_byte(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

/// Flag every banned allocation inside `// me-verify: hot` functions.
pub fn no_alloc_hot(rel_path: &str, masked: &MaskedSource, ir: &FileIr) -> Vec<Diagnostic> {
    let text = &masked.masked;
    let bytes = text.as_bytes();
    let mut out = Vec::new();
    for f in &ir.fns {
        if !f.has_key(KEY_HOT) || masked.in_test(f.fn_offset) {
            continue;
        }
        let Some((open, close)) = f.body else { continue };
        for (needle, display) in BANNED {
            let mut from = open;
            while let Some(p) = text[from..close].find(needle) {
                let at = from + p;
                from = at + needle.len();
                let first = needle.as_bytes()[0];
                if is_ident_byte(first) && at > 0 && is_ident_byte(bytes[at - 1]) {
                    continue;
                }
                out.push(Diagnostic {
                    file: rel_path.to_string(),
                    line: masked.line_of(at),
                    rule: "no-alloc-hot",
                    severity: Severity::Error,
                    message: format!(
                        "`{display}` allocates inside `// me-verify: hot` fn `{}` — use \
                         caller-provided scratch or drop the annotation",
                        f.name
                    ),
                });
            }
        }
    }
    out.sort_by_key(|d| d.line);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::FileIr;
    use crate::scan::mask_source;

    fn run(src: &str) -> Vec<Diagnostic> {
        let m = mask_source(src);
        let ir = FileIr::build(src, &m);
        no_alloc_hot("f.rs", &m, &ir)
    }

    #[test]
    fn allocations_in_hot_fns_are_flagged() {
        let src = "// me-verify: hot\nfn f(xs: &[f64]) -> Vec<f64> {\n    let v = xs.to_vec();\n    let s = format!(\"n={}\", v.len());\n    v\n}";
        let d = run(src);
        assert_eq!(d.len(), 2, "{d:?}");
        assert!(d.iter().all(|x| x.rule == "no-alloc-hot"));
        assert!(d[0].message.contains("to_vec"));
        assert!(d[1].message.contains("format!"));
    }

    #[test]
    fn unannotated_fns_may_allocate() {
        let src = "fn f(xs: &[f64]) -> Vec<f64> { xs.to_vec() }";
        assert!(run(src).is_empty());
    }

    #[test]
    fn clean_hot_fn_passes() {
        let src = "// me-verify: hot\nfn f(acc: &mut [f64], a: &[f64]) {\n    for (c, &v) in acc.iter_mut().zip(a) { *c = v.mul_add(2.0, *c); }\n}";
        assert!(run(src).is_empty());
    }

    #[test]
    fn vec_type_annotations_do_not_trip_the_needle() {
        // `Vec::new` must match as its own path, not inside `MyVec::new`.
        let src = "// me-verify: hot\nfn f() { let v = MyVec::new_in(arena); use_it(v); }";
        assert!(run(src).is_empty());
    }
}
