//! Machine-readable renderings of a [`Report`]: JSON for CI artifacts,
//! SARIF 2.1.0 for editors and code-scanning UIs, and the `--explain`
//! rule documentation table. Hand-rolled serialization, same
//! zero-external-crate constraint as everything else.

use crate::{Report, Severity};

/// `(rule id, one-line summary, longer explanation)` for every rule the
/// pass can emit. `--explain <rule>` prints from this table and SARIF
/// embeds it as rule metadata.
pub const RULES: [(&str, &str, &str); 13] = [
    (
        "no-unwrap",
        "no `.unwrap()` / `.expect()` / `panic!` in library code",
        "Library code returns Result/Option; panics are reserved for programming errors in \
         drivers and are budgeted per-file in verify.allow.",
    ),
    (
        "no-as-narrowing",
        "no bare `as` narrowing casts in numeric crates",
        "Numeric narrowing goes through the checked converters in me-numerics \
         (e.g. narrow_f32_exact) so precision loss is explicit and auditable.",
    ),
    (
        "float-eq",
        "no `==` / `!=` against nonzero float literals",
        "Floating-point comparisons against literals hide rounding assumptions; compare \
         against an explicit tolerance or use bitwise comparisons where identity is the claim.",
    ),
    (
        "missing-docs",
        "public items carry doc comments",
        "Every `pub` item needs a `///` doc; the reproduction is read more than it is run.",
    ),
    (
        "no-unsafe",
        "`unsafe` only at budgeted sites",
        "Each unsafe block/impl/fn must be budgeted per-file in verify.allow; new unsafe \
         needs a new budget line, which makes it show up in review.",
    ),
    (
        "unsafe-safety",
        "every unsafe site carries a `// SAFETY:` comment",
        "The comment states the invariant that makes the site sound; the reviewer checks the \
         invariant, not the keyword.",
    ),
    (
        "lock-order",
        "no lock-order cycles; no Condvar waits holding another lock",
        "me-verify indexes every Mutex acquisition workspace-wide and builds the \
         held-then-acquired graph. An edge on a cycle means two code paths disagree about \
         lock order (deadlock); a Condvar::wait whose guard releases one lock while a \
         different lock stays held parks the thread with that lock pinned. Guard scopes are \
         tracked intra-procedurally (let-binding to end of innermost block or drop()).",
    ),
    (
        "env-read",
        "environment reads only in `// me-verify: env-startup` fns",
        "DESIGN §10: configuration comes from the environment exactly once, at startup \
         (resolve_threads, resolve_shards, KernelDispatch::global), then flows as explicit \
         parameters. Any other env::var/set_var/remove_var in library code is \
         order-dependent global state and breaks run-to-run determinism. Tests mutate the \
         environment only under me_par::env_lock() and are exempt via #[cfg(test)].",
    ),
    (
        "no-alloc-hot",
        "`// me-verify: hot` fns never allocate",
        "Annotated hot paths (micro-kernels, pack loops, worker job dispatch, per-batch \
         serve dispatch, trace record) must not call Vec::new, vec!, Box::new, format!, \
         to_vec, collect, String::new/to_string/to_owned, or with_capacity. Steady-state \
         allocations show up as tail latency and as pack_scratch_grow counter drift.",
    ),
    (
        "fma-contract",
        "ukernel accumulator updates go through `mul_add`",
        "Bitwise identity across kernel variants (DESIGN §9) requires exactly one \
         correctly-rounded FMA per accumulator per ascending-k step. In ukernel files, an \
         assignment mixing bare `*` with bare `+`/`-` (or `+=` with a bare `*`) forks the \
         rounding stream; write acc = a.mul_add(b, acc) instead.",
    ),
    (
        "stale-allow",
        "verify.allow budgets must shrink with the code",
        "An allowlist entry whose file now has fewer violations than budgeted would let new \
         violations creep in unnoticed. Run me-verify --update-allow to rewrite counts \
         (entries that reach zero are dropped).",
    ),
    (
        "bad-annotation",
        "malformed `// me-verify:` annotations",
        "An unknown annotation key or an annotation that does not precede a fn item would \
         silently disable the rule it meant to engage, so it is reported instead.",
    ),
    (
        "model-audit",
        "engine catalog and model-table invariants hold",
        "Cross-checks the me-engine device catalog (Table I densities, TDP bounds, memory \
         timing) and me-model domain tables (shares sum to 1, monotone Amdahl reductions).",
    ),
];

/// The explanation text for `rule`, if it is a known rule id.
pub fn explain(rule: &str) -> Option<String> {
    RULES
        .iter()
        .find(|(id, _, _)| *id == rule)
        .map(|(id, short, long)| format!("{id}: {short}\n\n{long}"))
}

/// All known rule ids, for `--explain` error messages.
pub fn rule_ids() -> Vec<&'static str> {
    RULES.iter().map(|(id, _, _)| *id).collect()
}

fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Render a report as the `verify_report.json` CI artifact.
pub fn to_json(report: &Report, deny_warnings: bool) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    s.push_str("  \"tool\": \"me-verify\",\n");
    s.push_str(&format!("  \"files_scanned\": {},\n", report.files_scanned));
    s.push_str(&format!("  \"suppressed\": {},\n", report.suppressed));
    s.push_str(&format!("  \"deny_warnings\": {},\n", deny_warnings));
    s.push_str(&format!("  \"failed\": {},\n", report.failed(deny_warnings)));
    s.push_str("  \"diagnostics\": [");
    for (i, d) in report.diagnostics.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        let sev = match d.severity {
            Severity::Error => "error",
            Severity::Warning => "warning",
        };
        s.push_str(&format!(
            "\n    {{\"file\": \"{}\", \"line\": {}, \"rule\": \"{}\", \"severity\": \"{}\", \
             \"message\": \"{}\"}}",
            esc(&d.file),
            d.line,
            esc(d.rule),
            sev,
            esc(&d.message)
        ));
    }
    if !report.diagnostics.is_empty() {
        s.push_str("\n  ");
    }
    s.push_str("],\n");
    s.push_str("  \"audit_violations\": [");
    for (i, v) in report.audit_violations.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str(&format!("\n    \"{}\"", esc(v)));
    }
    if !report.audit_violations.is_empty() {
        s.push_str("\n  ");
    }
    s.push_str("]\n}\n");
    s
}

/// Render a report as a minimal SARIF 2.1.0 log (one run, one driver,
/// rule metadata from [`RULES`], one result per diagnostic; audit
/// violations become location-free `model-audit` results).
pub fn to_sarif(report: &Report) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    s.push_str("  \"$schema\": \"https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/Schemata/sarif-schema-2.1.0.json\",\n");
    s.push_str("  \"version\": \"2.1.0\",\n");
    s.push_str("  \"runs\": [{\n");
    s.push_str("    \"tool\": {\"driver\": {\"name\": \"me-verify\", \"rules\": [");
    for (i, (id, short, long)) in RULES.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str(&format!(
            "\n      {{\"id\": \"{}\", \"shortDescription\": {{\"text\": \"{}\"}}, \
             \"fullDescription\": {{\"text\": \"{}\"}}}}",
            esc(id),
            esc(short),
            esc(long)
        ));
    }
    s.push_str("\n    ]}},\n");
    s.push_str("    \"results\": [");
    let mut first = true;
    for d in &report.diagnostics {
        if !first {
            s.push(',');
        }
        first = false;
        let level = match d.severity {
            Severity::Error => "error",
            Severity::Warning => "warning",
        };
        s.push_str(&format!(
            "\n      {{\"ruleId\": \"{}\", \"level\": \"{}\", \"message\": {{\"text\": \"{}\"}}, \
             \"locations\": [{{\"physicalLocation\": {{\"artifactLocation\": {{\"uri\": \
             \"{}\"}}, \"region\": {{\"startLine\": {}}}}}}}]}}",
            esc(d.rule),
            level,
            esc(&d.message),
            esc(&d.file),
            d.line
        ));
    }
    for v in &report.audit_violations {
        if !first {
            s.push(',');
        }
        first = false;
        s.push_str(&format!(
            "\n      {{\"ruleId\": \"model-audit\", \"level\": \"error\", \"message\": \
             {{\"text\": \"{}\"}}}}",
            esc(v)
        ));
    }
    if !first {
        s.push_str("\n    ");
    }
    s.push_str("]\n  }]\n}\n");
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Diagnostic, Report};

    fn sample() -> Report {
        Report {
            diagnostics: vec![Diagnostic {
                file: "crates/x/src/lib.rs".into(),
                line: 7,
                rule: "lock-order",
                severity: Severity::Error,
                message: "acquiring `b` while holding `a`".into(),
            }],
            audit_violations: vec!["density \"off\"".into()],
            files_scanned: 3,
            suppressed: 1,
        }
    }

    #[test]
    fn json_contains_fields_and_escapes() {
        let j = to_json(&sample(), true);
        assert!(j.contains("\"files_scanned\": 3"));
        assert!(j.contains("\"rule\": \"lock-order\""));
        assert!(j.contains("\"failed\": true"));
        assert!(j.contains("density \\\"off\\\""), "quotes escaped: {j}");
    }

    #[test]
    fn sarif_has_schema_rules_and_results() {
        let s = to_sarif(&sample());
        assert!(s.contains("\"version\": \"2.1.0\""));
        assert!(s.contains("\"name\": \"me-verify\""));
        assert!(s.contains("\"ruleId\": \"lock-order\""));
        assert!(s.contains("\"startLine\": 7"));
        assert!(s.contains("\"ruleId\": \"model-audit\""));
        for (id, _, _) in RULES {
            assert!(s.contains(&format!("\"id\": \"{id}\"")), "rule {id} in metadata");
        }
    }

    #[test]
    fn explain_covers_every_rule() {
        for id in rule_ids() {
            let text = explain(id).expect("every listed rule explains itself");
            assert!(text.starts_with(id));
        }
        assert!(explain("no-such-rule").is_none());
    }
}
