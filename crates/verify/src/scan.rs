//! A hand-rolled Rust source scanner.
//!
//! The lints in [`crate::lints`] are textual, so they need the text
//! pre-masked: anything that *looks* like code but isn't — comments
//! (line, block, nested block), string literals (plain, byte, raw with
//! any number of `#`s), and char literals — must not produce matches.
//! [`mask_source`] produces a byte-for-byte copy of the input where all
//! such regions are blanked to spaces (newlines preserved, so byte
//! offsets and line numbers stay aligned with the original), plus two
//! side tables: which lines are doc comments (the `missing-docs` rule
//! needs them) and which bytes sit inside a `#[cfg(test)]` item (every
//! rule skips those).
//!
//! This is a scanner, not a parser: it tracks exactly the token-level
//! state needed to answer "is this byte code?", which is the level of
//! fidelity the lint rules require.

/// A source file after masking.
#[derive(Debug, Clone)]
pub struct MaskedSource {
    /// Same length as the input; every non-code byte replaced by a space
    /// (newlines kept, so offsets and line numbers match the original).
    pub masked: String,
    /// Per line (0-based): true when the line is a doc comment
    /// (`///`, `//!`, or inside `/** .. */` / `/*! .. */`).
    pub doc_lines: Vec<bool>,
    /// Per byte: true when the byte is inside an item gated by a
    /// `#[cfg(test)]`-style attribute (the attribute itself included).
    pub test_mask: Vec<bool>,
    /// Per byte: true when the byte was blanked as part of a *comment*
    /// (line, block, doc). Distinguishes a genuine `// me-verify:`
    /// annotation from string contents that merely look like one — both
    /// are spaces in `masked`.
    pub comment_mask: Vec<bool>,
    /// Byte offset of the start of each line (for offset → line lookup).
    pub line_starts: Vec<usize>,
}

impl MaskedSource {
    /// 1-based line number containing byte `offset`.
    pub fn line_of(&self, offset: usize) -> usize {
        match self.line_starts.binary_search(&offset) {
            Ok(i) => i + 1,
            Err(i) => i, // insertion point i means line i (1-based)
        }
    }

    /// Whether byte `offset` is inside a `#[cfg(test)]` region.
    pub fn in_test(&self, offset: usize) -> bool {
        self.test_mask.get(offset).copied().unwrap_or(false)
    }

    /// Whether byte `offset` was blanked as part of a comment.
    pub fn in_comment(&self, offset: usize) -> bool {
        self.comment_mask.get(offset).copied().unwrap_or(false)
    }
}

/// Mask a Rust source file: blank comments, strings, and char literals;
/// record doc-comment lines and `#[cfg(test)]` regions.
pub fn mask_source(src: &str) -> MaskedSource {
    let bytes = src.as_bytes();
    let n = bytes.len();
    let mut masked = bytes.to_vec();
    let mut line_starts = vec![0usize];
    for (i, &b) in bytes.iter().enumerate() {
        if b == b'\n' && i + 1 < n {
            line_starts.push(i + 1);
        }
    }
    let line_count = line_starts.len();
    let mut doc_lines = vec![false; line_count];
    let line_of = |off: usize| -> usize {
        match line_starts.binary_search(&off) {
            Ok(i) => i,
            Err(i) => i - 1,
        }
    };

    let blank = |masked: &mut [u8], from: usize, to: usize| {
        for b in masked.iter_mut().take(to).skip(from) {
            if *b != b'\n' {
                *b = b' ';
            }
        }
    };

    let mut comment_mask = vec![false; n];
    let mark_comment = |comment_mask: &mut [bool], from: usize, to: usize| {
        for m in comment_mask.iter_mut().take(to).skip(from) {
            *m = true;
        }
    };

    let mut i = 0;
    while i < n {
        match bytes[i] {
            b'/' if i + 1 < n && bytes[i + 1] == b'/' => {
                // Line comment; `///` (but not `////`) and `//!` are docs.
                let is_doc = (src[i..].starts_with("///") && !src[i..].starts_with("////"))
                    || src[i..].starts_with("//!");
                if is_doc {
                    doc_lines[line_of(i)] = true;
                }
                let end = src[i..].find('\n').map_or(n, |p| i + p);
                blank(&mut masked, i, end);
                mark_comment(&mut comment_mask, i, end);
                i = end;
            }
            b'/' if i + 1 < n && bytes[i + 1] == b'*' => {
                // Block comment with nesting; `/**` (not `/***`, not the
                // empty `/**/`) and `/*!` are docs.
                let is_doc = (src[i..].starts_with("/**")
                    && !src[i..].starts_with("/***")
                    && !src[i..].starts_with("/**/"))
                    || src[i..].starts_with("/*!");
                let start = i;
                let mut depth = 1usize;
                i += 2;
                while i < n && depth > 0 {
                    if src[i..].starts_with("/*") {
                        depth += 1;
                        i += 2;
                    } else if src[i..].starts_with("*/") {
                        depth -= 1;
                        i += 2;
                    } else {
                        i += 1;
                    }
                }
                if is_doc {
                    for l in line_of(start)..=line_of(i.saturating_sub(1)) {
                        doc_lines[l] = true;
                    }
                }
                blank(&mut masked, start, i);
                mark_comment(&mut comment_mask, start, i);
            }
            b'"' => {
                let end = skip_string(bytes, i);
                blank(&mut masked, i, end);
                i = end;
            }
            b'r' | b'b' if is_raw_string_start(bytes, i) => {
                let end = skip_raw_string(bytes, i);
                blank(&mut masked, i, end);
                i = end;
            }
            // Plain byte strings honor backslash escapes, so they lex
            // like ordinary strings, not raw ones (`b"say \"hi\""`).
            b'b' if i + 1 < n
                && bytes[i + 1] == b'"'
                && (i == 0 || !is_ident_byte(bytes[i - 1])) =>
            {
                let end = skip_string(bytes, i + 1);
                blank(&mut masked, i, end);
                i = end;
            }
            b'\'' => {
                if let Some(end) = char_literal_end(bytes, i) {
                    blank(&mut masked, i, end);
                    i = end;
                } else {
                    // A lifetime (`'a`) — leave as code.
                    i += 1;
                }
            }
            _ => i += 1,
        }
    }

    let masked = String::from_utf8_lossy(&masked).into_owned();
    let test_mask = mark_test_regions(&masked);
    MaskedSource { masked, doc_lines, test_mask, comment_mask, line_starts }
}

/// Is `r"`, `r#"`, `br"`, `br#"` … a *raw* string opener at `i`?
/// (`r#ident` raw identifiers and plain identifiers ending in `r`/`b`
/// must not match. Plain `b"…"` byte strings are escape-aware and are
/// handled by [`skip_string`], not here.)
fn is_raw_string_start(bytes: &[u8], i: usize) -> bool {
    // Must not be the tail of an identifier (`var"` is not valid Rust
    // anyway, but `xr#...` would mis-lex).
    if i > 0 && is_ident_byte(bytes[i - 1]) {
        return false;
    }
    let mut j = i;
    if bytes[j] == b'b' {
        j += 1;
    }
    if j < bytes.len() && bytes[j] == b'r' {
        j += 1;
        while j < bytes.len() && bytes[j] == b'#' {
            j += 1;
        }
        return j < bytes.len() && bytes[j] == b'"';
    }
    false
}

/// Skip a plain (or byte) string starting at the opening quote; returns
/// the index just past the closing quote.
fn skip_string(bytes: &[u8], mut i: usize) -> usize {
    debug_assert_eq!(bytes[i], b'"');
    i += 1;
    while i < bytes.len() {
        match bytes[i] {
            b'\\' => i += 2,
            b'"' => return i + 1,
            _ => i += 1,
        }
    }
    i
}

/// Skip a raw or raw-byte string (`r"…"`, `r##"…"##`, `br#"…"#`);
/// returns the index just past the final `"` + hashes.
fn skip_raw_string(bytes: &[u8], mut i: usize) -> usize {
    if bytes[i] == b'b' {
        i += 1;
    }
    if i < bytes.len() && bytes[i] == b'r' {
        i += 1;
    }
    let mut hashes = 0usize;
    while i < bytes.len() && bytes[i] == b'#' {
        hashes += 1;
        i += 1;
    }
    if i < bytes.len() && bytes[i] == b'"' {
        i += 1;
    } else {
        return i; // b"..." with zero r: opening quote handled above
    }
    while i < bytes.len() {
        if bytes[i] == b'"' {
            let mut k = 0usize;
            while k < hashes && i + 1 + k < bytes.len() && bytes[i + 1 + k] == b'#' {
                k += 1;
            }
            if k == hashes {
                return i + 1 + hashes;
            }
        }
        i += 1;
    }
    i
}

/// If a char literal starts at `i` (an apostrophe), return the index just
/// past its closing quote; `None` when it is a lifetime.
fn char_literal_end(bytes: &[u8], i: usize) -> Option<usize> {
    let n = bytes.len();
    if i + 1 >= n {
        return None;
    }
    if bytes[i + 1] == b'\\' {
        // Escaped char: scan to the closing quote.
        let mut j = i + 2;
        while j < n {
            match bytes[j] {
                b'\\' => j += 2,
                b'\'' => return Some(j + 1),
                b'\n' => return None,
                _ => j += 1,
            }
        }
        return None;
    }
    // Unescaped: rustc's rule exactly — a char literal is `'` + one
    // character + `'`. If the byte after exactly one (possibly
    // multi-byte) character is not a closing quote, this apostrophe
    // starts a lifetime or loop label (`'a`, `'static`, `'outer:`).
    // Scanning further would mis-lex `<'a, 'b>` by pairing the two
    // lifetimes' quotes into a bogus `'a, '` literal.
    if bytes[i + 1] == b'\'' || bytes[i + 1] == b'\n' {
        return None;
    }
    let char_len = utf8_len(bytes[i + 1]);
    match bytes.get(i + 1 + char_len) {
        Some(b'\'') => Some(i + 2 + char_len),
        _ => None,
    }
}

/// Length of the UTF-8 sequence starting with lead byte `b` (1 for
/// continuation bytes, which cannot start a char — the closing-quote
/// check then fails harmlessly).
fn utf8_len(b: u8) -> usize {
    match b {
        0xc0..=0xdf => 2,
        0xe0..=0xef => 3,
        0xf0..=0xf7 => 4,
        _ => 1,
    }
}

fn is_ident_byte(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

/// Mark the byte span of every item gated by a `#[cfg(test)]`-like
/// attribute. Works on *masked* text, so `test` inside strings or
/// comments cannot produce false regions, and brace matching is not
/// confused by braces in literals.
fn mark_test_regions(masked: &str) -> Vec<bool> {
    let bytes = masked.as_bytes();
    let n = bytes.len();
    let mut mask = vec![false; n];
    let mut search = 0usize;
    while let Some(p) = masked[search..].find("#[cfg(") {
        let attr_start = search + p;
        let paren_open = attr_start + "#[cfg".len();
        let Some(paren_close) = matching(bytes, paren_open, b'(', b')') else {
            break;
        };
        let content = &masked[paren_open + 1..paren_close];
        search = paren_close + 1;
        if !contains_ident(content, "test") {
            continue;
        }
        // End of the attribute: the `]` after the cfg parens.
        let Some(attr_end) = masked[paren_close..].find(']').map(|q| paren_close + q + 1) else {
            break;
        };
        // The gated item runs to the first top-level `;` (e.g. a gated
        // `use`) or through the matching brace of the first `{`.
        let mut j = attr_end;
        let mut item_end = None;
        while j < n {
            match bytes[j] {
                b';' => {
                    item_end = Some(j + 1);
                    break;
                }
                b'{' => {
                    item_end = matching(bytes, j, b'{', b'}').map(|e| e + 1);
                    break;
                }
                _ => j += 1,
            }
        }
        let end = item_end.unwrap_or(n);
        for m in mask.iter_mut().take(end).skip(attr_start) {
            *m = true;
        }
        search = end.max(search);
    }
    mask
}

/// Index of the delimiter matching the opener at `open` (depth-counted),
/// on masked text.
fn matching(bytes: &[u8], open: usize, lo: u8, hi: u8) -> Option<usize> {
    debug_assert_eq!(bytes[open], lo);
    let mut depth = 0usize;
    for (off, &b) in bytes.iter().enumerate().skip(open) {
        if b == lo {
            depth += 1;
        } else if b == hi {
            depth -= 1;
            if depth == 0 {
                return Some(off);
            }
        }
    }
    None
}

/// Does `text` contain `ident` as a whole word (non-identifier bytes or
/// boundaries on both sides)?
fn contains_ident(text: &str, ident: &str) -> bool {
    let bytes = text.as_bytes();
    let mut from = 0;
    while let Some(p) = text[from..].find(ident) {
        let at = from + p;
        let before_ok = at == 0 || !is_ident_byte(bytes[at - 1]);
        let after = at + ident.len();
        let after_ok = after >= bytes.len() || !is_ident_byte(bytes[after]);
        if before_ok && after_ok {
            return true;
        }
        from = at + ident.len();
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_comments_are_blanked_and_docs_recorded() {
        let src = "/// doc line\nlet x = 1; // trailing unwrap() mention\n//! inner doc\n";
        let m = mask_source(src);
        assert!(!m.masked.contains("doc line"));
        assert!(!m.masked.contains("unwrap"));
        assert!(m.masked.contains("let x = 1;"));
        assert!(m.doc_lines[0], "/// is a doc line");
        assert!(!m.doc_lines[1], "trailing // is not a doc line");
        assert!(m.doc_lines[2], "//! is a doc line");
    }

    #[test]
    fn nested_block_comments_are_blanked() {
        let src = "a /* outer /* inner .unwrap() */ still comment */ b";
        let m = mask_source(src);
        assert!(!m.masked.contains("unwrap"));
        assert!(!m.masked.contains("still comment"));
        assert!(m.masked.starts_with('a'));
        assert!(m.masked.ends_with('b'));
    }

    #[test]
    fn block_doc_comments_mark_all_their_lines() {
        let src = "/** one\ntwo\n*/\nfn f() {}\n";
        let m = mask_source(src);
        assert!(m.doc_lines[0] && m.doc_lines[1] && m.doc_lines[2]);
        assert!(!m.doc_lines[3]);
    }

    #[test]
    fn strings_with_escapes_are_blanked() {
        let src = r#"let s = "quoted \" .unwrap() \\"; let t = 2;"#;
        let m = mask_source(src);
        assert!(!m.masked.contains("unwrap"));
        assert!(m.masked.contains("let t = 2;"));
    }

    #[test]
    fn raw_strings_with_hashes_are_blanked() {
        let src = "let s = r#\"contains .unwrap() and \"quotes\"\"#; let u = 3;";
        let m = mask_source(src);
        assert!(!m.masked.contains("unwrap"));
        assert!(m.masked.contains("let u = 3;"));
    }

    #[test]
    fn raw_identifiers_are_not_raw_strings() {
        let src = "let r#type = 1; let after = 2;";
        let m = mask_source(src);
        assert!(m.masked.contains("let after = 2;"));
    }

    #[test]
    fn char_literals_masked_lifetimes_kept() {
        let src = "let c = '\"'; let q: &'static str = x; let nl = '\\n';";
        let m = mask_source(src);
        // The quote char literal must not open a string.
        assert!(m.masked.contains("let q: &'static str = x;"));
        assert!(!m.masked.contains("'\\n'"));
    }

    #[test]
    fn adjacent_lifetimes_are_not_a_char_literal() {
        // Regression: the old lookahead paired the quotes of `'a` and
        // `'b` into a bogus `'a, '` literal, swallowing the code after.
        let src = "fn f<'a, 'b>(x: &'a str, y: &'b str) { use_it(x, y).unwrap() }";
        let m = mask_source(src);
        assert_eq!(m.masked, src, "lifetimes must survive masking untouched");
        let src2 = "impl<'a, T> Iter<'a, T> { fn g(&'a self) { self.v.unwrap() } }";
        let m2 = mask_source(src2);
        assert!(m2.masked.contains(".unwrap()"), "code after lifetimes stays visible");
    }

    #[test]
    fn loop_labels_are_not_char_literals() {
        let src = "'outer: for i in 0..n { break 'outer; } done();";
        let m = mask_source(src);
        assert_eq!(m.masked, src);
    }

    #[test]
    fn multibyte_char_literals_are_masked() {
        let src = "let c = 'λ'; let d: &'static str = s;";
        let m = mask_source(src);
        assert!(!m.masked.contains('λ'));
        assert!(m.masked.contains("let d: &'static str = s;"));
    }

    #[test]
    fn byte_strings_honor_escapes() {
        // Regression: `b"…"` used to be lexed as a raw string, so the
        // escaped quote terminated it early and the tail leaked as code.
        let src = r#"let s = b"say \"hi\" now"; let t = 4;"#;
        let m = mask_source(src);
        assert!(!m.masked.contains("say"));
        assert!(!m.masked.contains("now"));
        assert!(m.masked.contains("let t = 4;"));
    }

    #[test]
    fn raw_byte_strings_still_lex_raw() {
        // In `br#"…"#` a backslash is literal, not an escape.
        let src = "let s = br#\"back \\\" slash\"#; let v = 5;";
        let m = mask_source(src);
        assert!(!m.masked.contains("slash"));
        assert!(m.masked.contains("let v = 5;"));
    }

    #[test]
    fn raw_strings_with_hashes_inside_doc_comments() {
        // A doc comment quoting a raw string must stay one comment line:
        // the `"` inside it must not open a real string.
        let src = "/// Use `r##\"x\"##` to quote.\nfn f() { body().unwrap() }\n// plain: r#\"y\"#\nlet z = 6;\n";
        let m = mask_source(src);
        assert!(m.doc_lines[0], "doc line recorded");
        assert!(!m.masked.contains("r##"), "doc contents blanked");
        assert!(m.masked.contains(".unwrap()"), "code after the doc survives");
        assert!(m.masked.contains("let z = 6;"), "code after the plain comment survives");
    }

    #[test]
    fn raw_string_containing_doc_and_cfg_text_is_inert() {
        // The converse: doc-comment-looking and cfg(test)-looking text
        // inside a raw string must produce no doc lines or test regions.
        let src = "let s = r##\"\n/// not a doc\n#[cfg(test)]\nmod tests {}\n\"##;\nfn real() {}\n";
        let m = mask_source(src);
        assert!(m.doc_lines.iter().all(|&d| !d), "no doc lines from string contents");
        assert!(m.test_mask.iter().all(|&t| !t), "no test regions from string contents");
        assert!(m.masked.contains("fn real() {}"));
    }

    #[test]
    fn cfg_test_mod_region_is_marked() {
        let src = "fn lib() {}\n#[cfg(test)]\nmod tests {\n    fn t() { x.unwrap() }\n}\nfn after() {}\n";
        let m = mask_source(src);
        let unwrap_at = m.masked.find(".unwrap()").expect("unwrap stays in masked code");
        assert!(m.in_test(unwrap_at), "unwrap inside cfg(test) mod");
        let lib_at = m.masked.find("fn lib").expect("present");
        let after_at = m.masked.find("fn after").expect("present");
        assert!(!m.in_test(lib_at));
        assert!(!m.in_test(after_at));
    }

    #[test]
    fn cfg_all_test_and_gated_use_are_marked() {
        let src = "#[cfg(all(test, feature = \"x\"))]\nfn helper() { a.unwrap() }\n#[cfg(test)]\nuse std::fmt;\nfn code() {}\n";
        let m = mask_source(src);
        let unwrap_at = m.masked.find(".unwrap()").expect("present");
        assert!(m.in_test(unwrap_at), "cfg(all(test, ..)) counts as test");
        let use_at = m.masked.find("use std").expect("present");
        assert!(m.in_test(use_at), "gated use runs to the semicolon");
        let code_at = m.masked.find("fn code").expect("present");
        assert!(!m.in_test(code_at));
    }

    #[test]
    fn cfg_not_test_is_not_a_test_region() {
        // `test` appears as an ident, so the conservative scanner marks
        // it; but a plain feature cfg must not.
        let src = "#[cfg(feature = \"testing\")]\nfn f() { a.unwrap() }\n";
        let m = mask_source(src);
        let unwrap_at = m.masked.find(".unwrap()").expect("present");
        assert!(!m.in_test(unwrap_at), "feature string is masked, no test ident");
    }

    #[test]
    fn comment_mask_separates_comments_from_strings() {
        let src = "let s = \"// not a comment\"; // a real comment\n";
        let m = mask_source(src);
        let in_string = src.find("not").expect("present");
        let in_comment = src.find("real").expect("present");
        assert!(!m.in_comment(in_string), "string contents are not comment bytes");
        assert!(m.in_comment(in_comment), "trailing comment bytes are marked");
        assert!(m.in_comment(src.find("// a").expect("present")), "the slashes too");
    }

    #[test]
    fn line_numbers_align_with_original() {
        let src = "line one\nline two\nline three\n";
        let m = mask_source(src);
        assert_eq!(m.line_of(0), 1);
        assert_eq!(m.line_of(src.find("two").expect("present")), 2);
        assert_eq!(m.line_of(src.find("three").expect("present")), 3);
    }
}
