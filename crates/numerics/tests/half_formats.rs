//! Bit-exact validation of the `u16` half-precision codecs
//! ([`me_numerics::F16Bits`], [`me_numerics::Bf16Bits`]).
//!
//! These codecs are the storage layer of the half-precision GEMM compute
//! path (me-linalg's `blas3::half`) and of the HostF16 Ozaki backend, so
//! their narrowing must be *exactly* IEEE 754 round-to-nearest-even —
//! one wrong tie or mishandled subnormal silently breaks the
//! bitwise-equality pins downstream. Three independent lines of attack:
//!
//! 1. a hand-computed bit table (ties at both parities, overflow → inf,
//!    the 2^-24 / 2^-133 subnormal quanta, NaN sign, signed zero);
//! 2. exhaustive sweeps over all 65536 bit patterns (round-trips, and
//!    widen-monotonicity over the ordered finite patterns);
//! 3. seeded differential tests against the repo's independent f64-path
//!    RNE reference, `FloatFormat::quantize`.

use me_numerics::{Bf16Bits, F16Bits, FloatFormat, Rng64};

// ---------------------------------------------------------------------------
// 1. Hand-computed bit tables.
// ---------------------------------------------------------------------------

/// binary16 narrowing cases computed by hand from the encoding
/// (1 sign, 5 exp bits, bias 15, 10 fraction bits).
#[test]
fn f16_hand_computed_bit_table() {
    let table: &[(f32, u16, &str)] = &[
        (0.0, 0x0000, "positive zero"),
        (-0.0, 0x8000, "negative zero keeps its sign"),
        (1.0, 0x3C00, "one"),
        (-1.0, 0xBC00, "minus one"),
        (2.0, 0x4000, "two"),
        (0.5, 0x3800, "half"),
        (1.0 + 2f32.powi(-10), 0x3C01, "one + one ulp"),
        // 1 + 2^-11 is exactly halfway between frac 0 and frac 1: RNE
        // ties to the even fraction 0.
        (1.0 + 2f32.powi(-11), 0x3C00, "tie rounds down to even frac 0"),
        // 1 + 3·2^-11 is halfway between frac 1 and frac 2: ties to 2.
        (1.0 + 3.0 * 2f32.powi(-11), 0x3C02, "tie rounds up to even frac 2"),
        (65504.0, 0x7BFF, "max finite"),
        // 65520 is exactly halfway between 65504 and 2^16; RNE picks the
        // even candidate 2^16, which overflows the 5-bit exponent.
        (65520.0, 0x7C00, "overflow tie rounds to +inf"),
        (-65520.0, 0xFC00, "overflow tie rounds to -inf"),
        (65519.0, 0x7BFF, "just under the overflow tie stays finite"),
        (f32::INFINITY, 0x7C00, "+inf"),
        (f32::NEG_INFINITY, 0xFC00, "-inf"),
        (2f32.powi(-14), 0x0400, "min normal"),
        (2f32.powi(-15), 0x0200, "subnormal: half the min normal"),
        (2f32.powi(-24), 0x0001, "min subnormal 2^-24"),
        (-2f32.powi(-24), 0x8001, "negative min subnormal"),
        // 2^-25 is halfway between 0 and the 2^-24 quantum: ties to 0.
        (2f32.powi(-25), 0x0000, "half the min subnormal ties to zero"),
        (-2f32.powi(-25), 0x8000, "...preserving the sign of the zero"),
        // 1.5·2^-24 is halfway between quanta 1 and 2: ties to 2.
        (1.5 * 2f32.powi(-24), 0x0002, "subnormal tie rounds to even"),
        // Anything past the halfway point rounds away from zero.
        (1.5 * 2f32.powi(-25), 0x0001, "0.75 quantum rounds up"),
        // 1/3 in binary16: significand 1.0101010101|01..., remainder
        // below half, so the fraction truncates to 0b0101010101 = 0x155.
        (1.0 / 3.0, 0x3555, "one third rounds down"),
    ];
    for &(x, want, why) in table {
        let got = F16Bits::from_f32(x).to_bits();
        assert_eq!(
            got, want,
            "f16({x:e}): got {got:#06x}, want {want:#06x} ({why})"
        );
    }
}

/// bfloat16 narrowing cases (1 sign, 8 exp bits, bias 127, 7 fraction
/// bits — f32's upper half, rounded RNE on the discarded 16 bits).
#[test]
fn bf16_hand_computed_bit_table() {
    let table: &[(f32, u16, &str)] = &[
        (0.0, 0x0000, "positive zero"),
        (-0.0, 0x8000, "negative zero keeps its sign"),
        (1.0, 0x3F80, "one"),
        (-2.0, 0xC000, "minus two"),
        (1.0 + 2f32.powi(-7), 0x3F81, "one + one ulp"),
        // Discarded low half exactly 0x8000 with even high half: stays.
        (f32::from_bits(0x3F80_8000), 0x3F80, "tie at even high half"),
        // Same tie with odd high half: rounds up.
        (f32::from_bits(0x3F81_8000), 0x3F82, "tie at odd high half"),
        // One past the tie rounds up regardless of parity.
        (f32::from_bits(0x3F80_8001), 0x3F81, "past the tie rounds up"),
        (f32::from_bits(0x7F7F_FFFF), 0x7F80, "f32::MAX overflows to +inf"),
        (f32::from_bits(0xFF7F_FFFF), 0xFF80, "-f32::MAX overflows to -inf"),
        (f32::from_bits(0x7F7F_0000), 0x7F7F, "bf16 max finite is exact"),
        (f32::INFINITY, 0x7F80, "+inf"),
        (f32::NEG_INFINITY, 0xFF80, "-inf"),
        // f32::powi flushes subnormal results to zero, so the deep
        // subnormal inputs are built from their bit patterns directly
        // (f32 subnormal = frac · 2^-149; 2^-133 has frac = 2^16).
        (f32::from_bits(0x0080_0000), 0x0080, "min normal 2^-126"),
        (f32::from_bits(0x0001_0000), 0x0001, "min subnormal 2^-133"),
        (f32::from_bits(0x8001_0000), 0x8001, "negative min subnormal"),
        // 2^-134 is halfway between 0 and the 2^-133 quantum: ties to 0.
        (f32::from_bits(0x0000_8000), 0x0000, "half the min subnormal ties to zero"),
        (f32::from_bits(0x0001_8000), 0x0002, "subnormal tie rounds to even"),
        // f32's own min subnormal is far below bf16's range.
        (f32::from_bits(0x0000_0001), 0x0000, "f32 min subnormal flushes"),
        // π keeps its upper half: 0x40490FDB, low 0x0FDB < 0x8000.
        (std::f32::consts::PI, 0x4049, "pi rounds down"),
    ];
    for &(x, want, why) in table {
        let got = Bf16Bits::from_f32(x).to_bits();
        assert_eq!(
            got, want,
            "bf16({x:e}): got {got:#06x}, want {want:#06x} ({why})"
        );
    }
}

/// NaN narrowing canonicalizes the payload but must keep the sign and
/// NaN-ness for every NaN input, including signalling payloads.
#[test]
fn nan_narrowing_keeps_sign_and_nanness() {
    let nans: [u32; 6] = [
        0x7FC0_0000, // canonical quiet +NaN
        0xFFC0_0000, // canonical quiet -NaN
        0x7F80_0001, // signalling +NaN, minimal payload
        0xFF80_0001, // signalling -NaN
        0x7FFF_FFFF, // all-ones payload
        0xFFAB_CDEF, // arbitrary negative payload
    ];
    for bits in nans {
        let x = f32::from_bits(bits);
        let neg = bits >> 31 == 1;

        let h = F16Bits::from_f32(x);
        assert_eq!(h.to_bits() & 0x7FFF, 0x7E00, "f16 canonical NaN payload");
        assert_eq!(h.to_bits() >> 15 == 1, neg, "f16 NaN sign for {bits:#010x}");
        assert!(h.to_f32().is_nan());

        let b = Bf16Bits::from_f32(x);
        assert_eq!(b.to_bits() & 0x7FFF, 0x7FC0, "bf16 canonical NaN payload");
        assert_eq!(b.to_bits() >> 15 == 1, neg, "bf16 NaN sign for {bits:#010x}");
        assert!(b.to_f32().is_nan());
    }
}

// ---------------------------------------------------------------------------
// 2. Exhaustive 65536-pattern sweeps.
// ---------------------------------------------------------------------------

/// Widening is exact, so narrow(widen(p)) must reproduce every non-NaN
/// bit pattern p exactly; NaN patterns must come back canonical with the
/// sign preserved. Exhaustive over all 2^16 patterns for both kinds.
#[test]
fn round_trip_is_identity_for_all_65536_patterns() {
    for p in 0..=u16::MAX {
        let f = F16Bits::from_bits(p);
        let is_nan_f16 = (p & 0x7C00) == 0x7C00 && (p & 0x03FF) != 0;
        let rt = F16Bits::from_f32(f.to_f32()).to_bits();
        if is_nan_f16 {
            assert_eq!(rt, (p & 0x8000) | 0x7E00, "f16 NaN {p:#06x} canonicalizes");
        } else {
            assert_eq!(rt, p, "f16 round trip of {p:#06x}");
        }

        let b = Bf16Bits::from_bits(p);
        let is_nan_bf16 = (p & 0x7F80) == 0x7F80 && (p & 0x007F) != 0;
        let rt = Bf16Bits::from_f32(b.to_f32()).to_bits();
        if is_nan_bf16 {
            assert_eq!(rt, (p & 0x8000) | 0x7FC0, "bf16 NaN {p:#06x} canonicalizes");
        } else {
            assert_eq!(rt, p, "bf16 round trip of {p:#06x}");
        }
    }
}

/// Widening must be strictly monotone over the finite patterns in value
/// order (subnormals chain seamlessly into normals, no step is skipped
/// or repeated). Sweeps every adjacent non-negative finite pair; the
/// negative half follows by the sign symmetry asserted alongside.
#[test]
fn widening_is_strictly_monotone_over_finite_patterns() {
    // f16: non-negative finite patterns are 0x0000..=0x7BFF in value order.
    for p in 0u16..0x7BFF {
        let lo = F16Bits::from_bits(p).to_f32();
        let hi = F16Bits::from_bits(p + 1).to_f32();
        assert!(lo < hi, "f16 widen not monotone at {p:#06x}: {lo:e} !< {hi:e}");
        let neg = F16Bits::from_bits(p | 0x8000).to_f32();
        assert_eq!(neg.to_bits(), (-lo).to_bits(), "f16 sign symmetry at {p:#06x}");
    }
    // bf16: non-negative finite patterns are 0x0000..=0x7F7F.
    for p in 0u16..0x7F7F {
        let lo = Bf16Bits::from_bits(p).to_f32();
        let hi = Bf16Bits::from_bits(p + 1).to_f32();
        assert!(lo < hi, "bf16 widen not monotone at {p:#06x}: {lo:e} !< {hi:e}");
        let neg = Bf16Bits::from_bits(p | 0x8000).to_f32();
        assert_eq!(neg.to_bits(), (-lo).to_bits(), "bf16 sign symmetry at {p:#06x}");
    }
}

// ---------------------------------------------------------------------------
// 3. Seeded differential tests against the f64-path RNE reference.
// ---------------------------------------------------------------------------

/// Draw f32 values spanning the interesting exponent landscape of both
/// formats: moderate, near-overflow, deep-subnormal, and pattern-random.
fn sample_f32(rng: &mut Rng64) -> f32 {
    match rng.range_usize(0, 8) {
        // Fully random bit pattern: hits NaNs, infs, extremes.
        0 => f32::from_bits(rng.next_u64() as u32),
        // Near f16 overflow.
        1 => (rng.range_f64(-1.1, 1.1) * 65536.0) as f32,
        // f16 subnormal territory.
        2 => (rng.range_f64(-1.0, 1.0) * 2f64.powi(-20)) as f32,
        // bf16 subnormal territory.
        3 => (rng.range_f64(-1.0, 1.0) * 2f64.powi(-129)) as f32,
        4 => (rng.range_f64(-1.0, 1.0) * 2f64.powi(-135)) as f32,
        _ => rng.range_f64(-4.0, 4.0) as f32,
    }
}

/// The codec narrowing must agree bit-for-bit in *value* with the repo's
/// independent RNE implementation (`FloatFormat::round` decomposes the
/// f64 pattern; the codecs shift u32 patterns — shared bugs are
/// implausible). 40k seeded samples per kind.
#[test]
fn narrowing_matches_float_format_quantize() {
    let mut rng = Rng64::seed_from_u64(0x4A1F_F0E5);
    for _ in 0..40_000 {
        let x = sample_f32(&mut rng);
        if x.is_nan() {
            continue; // NaN handling pinned by the dedicated test above
        }
        let via_codec = F16Bits::from_f32(x).to_f32() as f64;
        let via_round = FloatFormat::F16.quantize(x as f64);
        assert_eq!(
            via_codec.to_bits(),
            via_round.to_bits(),
            "f16({:#010x}): codec {via_codec:e} vs reference {via_round:e}",
            x.to_bits()
        );
        let via_codec = Bf16Bits::from_f32(x).to_f32() as f64;
        let via_round = FloatFormat::BF16.quantize(x as f64);
        assert_eq!(
            via_codec.to_bits(),
            via_round.to_bits(),
            "bf16({:#010x}): codec {via_codec:e} vs reference {via_round:e}",
            x.to_bits()
        );
    }
}

/// Narrowing is monotone (weakly, since distinct f32s collapse onto the
/// same half value): x ≤ y implies narrow(x) ≤ narrow(y) as values.
#[test]
fn narrowing_is_weakly_monotone() {
    let mut rng = Rng64::seed_from_u64(0x0DDE_7E57);
    for _ in 0..20_000 {
        let a = sample_f32(&mut rng);
        let b = sample_f32(&mut rng);
        if a.is_nan() || b.is_nan() {
            continue;
        }
        let (x, y) = if a <= b { (a, b) } else { (b, a) };
        let (fx, fy) = (F16Bits::from_f32(x).to_f32(), F16Bits::from_f32(y).to_f32());
        assert!(fx <= fy, "f16 order violated: {x:e} -> {fx:e}, {y:e} -> {fy:e}");
        let (bx, by) = (Bf16Bits::from_f32(x).to_f32(), Bf16Bits::from_f32(y).to_f32());
        assert!(bx <= by, "bf16 order violated: {x:e} -> {bx:e}, {y:e} -> {by:e}");
    }
}

/// Narrowing error is at most half an ulp of the result (the RNE bound),
/// checked on in-range normal draws where the ulp is well-defined.
#[test]
fn narrowing_error_is_within_half_ulp() {
    let mut rng = Rng64::seed_from_u64(0x5EED_B17E);
    for _ in 0..20_000 {
        let x = rng.range_f64(-1000.0, 1000.0) as f32;
        let h = F16Bits::from_f32(x).to_f32();
        // ulp of h in binary16: 2^(e-10) for normal h.
        let e = (h.abs().to_bits() >> 23) as i32 - 127;
        if h != 0.0 && e >= -14 {
            let ulp = 2f64.powi(e - 10);
            assert!(
                (h as f64 - x as f64).abs() <= ulp / 2.0,
                "f16({x:e}) = {h:e} off by more than half an ulp"
            );
        }
        let b = Bf16Bits::from_f32(x).to_f32();
        let e = (b.abs().to_bits() >> 23) as i32 - 127;
        if b != 0.0 && e >= -126 {
            let ulp = 2f64.powi(e - 7);
            assert!(
                (b as f64 - x as f64).abs() <= ulp / 2.0,
                "bf16({x:e}) = {b:e} off by more than half an ulp"
            );
        }
    }
}
