//! Double-double arithmetic: ~106-bit precision from pairs of f64.
//!
//! The Ozaki scheme's final reduction and the reference GEMM both need
//! "wider than f64" arithmetic. [`Dd`] provides it as a proper type with
//! error-free building blocks: each value is an unevaluated sum `hi + lo`
//! with `|lo| ≤ ulp(hi)/2`.

use crate::eft::{fast_two_sum, two_prod, two_sum};

/// A double-double value (`hi + lo`, non-overlapping).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct Dd {
    /// Leading component.
    pub hi: f64,
    /// Trailing component, `|lo| <= ulp(hi)/2`.
    pub lo: f64,
}

// add/sub/mul/div/neg are the natural names for an arithmetic type;
// operator traits are deliberately not implemented so every rounding point
// stays an explicit method call.
#[allow(clippy::should_implement_trait)]
impl Dd {
    /// Zero.
    pub const ZERO: Dd = Dd { hi: 0.0, lo: 0.0 };
    /// One.
    pub const ONE: Dd = Dd { hi: 1.0, lo: 0.0 };

    /// Construct from an f64 (exact).
    #[inline]
    pub fn from_f64(x: f64) -> Dd {
        Dd { hi: x, lo: 0.0 }
    }

    /// Construct from a (possibly overlapping) pair, renormalizing.
    #[inline]
    pub fn renorm(hi: f64, lo: f64) -> Dd {
        let (h, l) = fast_two_sum_safe(hi, lo);
        Dd { hi: h, lo: l }
    }

    /// Round to f64.
    #[inline]
    pub fn to_f64(self) -> f64 {
        self.hi + self.lo
    }

    /// Addition (Dekker/Knuth accurate add: ~106-bit).
    #[inline]
    pub fn add(self, rhs: Dd) -> Dd {
        let (s1, e1) = two_sum(self.hi, rhs.hi);
        let (s2, e2) = two_sum(self.lo, rhs.lo);
        let (h, t) = fast_two_sum_safe(s1, e1 + s2);
        let (hi, lo) = fast_two_sum_safe(h, t + e2);
        Dd { hi, lo }
    }

    /// Negation (exact).
    #[inline]
    pub fn neg(self) -> Dd {
        Dd { hi: -self.hi, lo: -self.lo }
    }

    /// Subtraction.
    #[inline]
    pub fn sub(self, rhs: Dd) -> Dd {
        self.add(rhs.neg())
    }

    /// Add an f64 term.
    #[inline]
    pub fn add_f64(self, x: f64) -> Dd {
        let (s, e) = two_sum(self.hi, x);
        let (hi, lo) = fast_two_sum_safe(s, e + self.lo);
        Dd { hi, lo }
    }

    /// Multiplication (~106-bit).
    #[inline]
    pub fn mul(self, rhs: Dd) -> Dd {
        let (p, e) = two_prod(self.hi, rhs.hi);
        let e = e + self.hi * rhs.lo + self.lo * rhs.hi;
        let (hi, lo) = fast_two_sum_safe(p, e);
        Dd { hi, lo }
    }

    /// Multiply by an f64.
    #[inline]
    pub fn mul_f64(self, x: f64) -> Dd {
        let (p, e) = two_prod(self.hi, x);
        let (hi, lo) = fast_two_sum_safe(p, e + self.lo * x);
        Dd { hi, lo }
    }

    /// Division (one Newton step on the f64 quotient).
    pub fn div(self, rhs: Dd) -> Dd {
        let q1 = self.hi / rhs.hi;
        // r = self - q1 * rhs, in dd.
        let r = self.sub(rhs.mul_f64(q1));
        let q2 = r.hi / rhs.hi;
        let r2 = r.sub(rhs.mul_f64(q2));
        let q3 = r2.hi / rhs.hi;
        Dd::renorm(q1, q2).add_f64(q3)
    }

    /// Absolute value.
    #[inline]
    pub fn abs(self) -> Dd {
        if self.hi < 0.0 || (self.hi == 0.0 && self.lo < 0.0) {
            self.neg()
        } else {
            self
        }
    }
}

/// `fast_two_sum` that tolerates either ordering by branching.
#[inline]
fn fast_two_sum_safe(a: f64, b: f64) -> (f64, f64) {
    if a.abs() >= b.abs() || a == 0.0 || b == 0.0 {
        fast_two_sum(a, b)
    } else {
        fast_two_sum(b, a)
    }
}

/// Dot product of f64 slices in full double-double arithmetic.
pub fn dd_dot(x: &[f64], y: &[f64]) -> Dd {
    assert_eq!(x.len(), y.len(), "dd_dot: length mismatch");
    let mut acc = Dd::ZERO;
    for (&a, &b) in x.iter().zip(y) {
        let (p, e) = two_prod(a, b);
        acc = acc.add(Dd::renorm(p, e));
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn representation_invariant() {
        let d = Dd::from_f64(1.0).add_f64(1e-30);
        assert!(d.lo.abs() <= d.hi.abs() * f64::EPSILON);
        assert_eq!(d.hi, 1.0);
        assert_eq!(d.lo, 1e-30);
    }

    #[test]
    fn add_carries_106_bits() {
        // 1 + 2^-80 is representable in dd but not f64.
        let d = Dd::from_f64(1.0).add_f64((2.0f64).powi(-80));
        assert_eq!(d.hi, 1.0);
        assert_eq!(d.lo, (2.0f64).powi(-80));
        // Subtracting 1 recovers the tiny part exactly.
        let t = d.sub(Dd::ONE);
        assert_eq!(t.to_f64(), (2.0f64).powi(-80));
    }

    #[test]
    fn mul_is_nearly_exact() {
        // (1 + 2^-30)^2 = 1 + 2^-29 + 2^-60 exactly; dd holds all of it.
        let x = Dd::from_f64(1.0).add_f64((2.0f64).powi(-30));
        let sq = x.mul(x);
        let expect_lo = (2.0f64).powi(-60);
        let diff = sq.sub(Dd::from_f64(1.0)).sub(Dd::from_f64((2.0f64).powi(-29)));
        assert_eq!(diff.to_f64(), expect_lo);
    }

    #[test]
    fn div_recovers_thirds() {
        let third = Dd::ONE.div(Dd::from_f64(3.0));
        let back = third.mul_f64(3.0);
        let err = back.sub(Dd::ONE).to_f64().abs();
        assert!(err < 1e-31, "1/3*3 error {err}");
    }

    #[test]
    fn dd_dot_matches_dot2() {
        let x = [1.0, 1e16, -1e16, 0.1];
        let y = [1.0, 1.0, 1.0, 1.0];
        let d = dd_dot(&x, &y);
        assert_eq!(d.to_f64(), crate::eft::dot2(&x, &y));
        assert_eq!(d.to_f64(), 1.1);
    }

    #[test]
    fn abs_and_neg() {
        let d = Dd::from_f64(-2.5);
        assert_eq!(d.abs().to_f64(), 2.5);
        assert_eq!(d.neg().to_f64(), 2.5);
        assert_eq!(Dd::ZERO.abs(), Dd::ZERO);
    }

    #[test]
    fn empty_dot() {
        assert_eq!(dd_dot(&[], &[]).to_f64(), 0.0);
    }
}
