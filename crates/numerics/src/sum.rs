//! Compensated and reproducible summation.
//!
//! The Ozaki scheme (paper §IV-B) advertises *bitwise reproducibility*
//! "independent of the thread count". That property comes from the final
//! accumulation: the all-to-all products are exact, so any summation that is
//! itself deterministic — e.g. a fixed-order compensated sum or an
//! exponent-binned fixed-point sum — yields bit-identical results no matter
//! how the work was partitioned. This module provides those accumulators.

use crate::eft::{two_sum, fast_two_sum};

/// Kahan compensated summation.
pub fn kahan_sum(xs: &[f64]) -> f64 {
    let mut s = 0.0;
    let mut c = 0.0;
    for &x in xs {
        let y = x - c;
        let t = s + y;
        c = (t - s) - y;
        s = t;
    }
    s
}

/// Neumaier's improved compensated summation (handles |x| > |s|).
pub fn neumaier_sum(xs: &[f64]) -> f64 {
    let mut s = 0.0;
    let mut c = 0.0;
    for &x in xs {
        let t = s + x;
        if s.abs() >= x.abs() {
            c += (s - t) + x;
        } else {
            c += (x - t) + s;
        }
        s = t;
    }
    s + c
}

/// Pairwise (cascade) summation: O(log n) error growth; the deterministic
/// tree makes it reproducible for a fixed input order.
pub fn pairwise_sum(xs: &[f64]) -> f64 {
    const BASE: usize = 32;
    if xs.len() <= BASE {
        return xs.iter().sum();
    }
    let mid = xs.len() / 2;
    pairwise_sum(&xs[..mid]) + pairwise_sum(&xs[mid..])
}

/// Bitwise-reproducible sum: sorts the addends by a total order on their bit
/// patterns before a compensated accumulation, so the result is independent
/// of the input permutation (and therefore of any parallel partitioning).
///
/// The result is the correctly-rounded-quality compensated sum of the sorted
/// sequence; permuting the input does not change it.
pub fn reproducible_sum(xs: &[f64]) -> f64 {
    let mut v: Vec<f64> = xs.to_vec();
    v.sort_by(|a, b| {
        // Total order: by absolute value, then by sign, then bit pattern.
        a.abs()
            .partial_cmp(&b.abs())
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal))
            .then(a.to_bits().cmp(&b.to_bits()))
    });
    neumaier_sum(&v)
}

/// A running error-compensated accumulator holding the sum as an unevaluated
/// `hi + lo` pair (a "double-double"-lite). Used as the deterministic final
/// reduction of the Ozaki scheme.
#[derive(Debug, Clone, Copy, Default)]
pub struct Accumulator {
    hi: f64,
    lo: f64,
}

impl Accumulator {
    /// Fresh zero accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a term exactly (up to the double-double representation).
    #[inline]
    pub fn add(&mut self, x: f64) {
        let (s, e) = two_sum(self.hi, x);
        let lo = self.lo + e;
        let (hi, lo) = fast_two_sum(s, lo);
        self.hi = hi;
        self.lo = lo;
    }

    /// Merge another accumulator.
    pub fn merge(&mut self, other: &Accumulator) {
        self.add(other.hi);
        self.add(other.lo);
    }

    /// Round the accumulated value to f64.
    #[inline]
    pub fn value(&self) -> f64 {
        self.hi + self.lo
    }

    /// The unevaluated (hi, lo) pair.
    pub fn parts(&self) -> (f64, f64) {
        (self.hi, self.lo)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ill_conditioned() -> Vec<f64> {
        // Large cancellation: pairs (M, -M) plus tiny residuals.
        let mut v = Vec::new();
        for i in 0..100 {
            let m = (10.0f64).powi(i % 16 + 1);
            v.push(m);
            v.push(-m);
            v.push(1e-10);
        }
        v
    }

    #[test]
    fn compensated_sums_recover_cancellation() {
        let v = ill_conditioned();
        let exact = 100.0 * 1e-10;
        // Kahan's single compensation loses the running sum when an addend
        // is much larger than it (the classic limitation); Neumaier and the
        // reproducible sum recover the exact result.
        assert!((neumaier_sum(&v) - exact).abs() < 1e-20, "neumaier {}", neumaier_sum(&v));
        assert!((reproducible_sum(&v) - exact).abs() < 1e-20);
    }

    #[test]
    fn kahan_recovers_small_addends_into_large_sum() {
        // The classic Kahan case: each addend is below ulp(sum)/2 and a
        // naive sum drops every one of them; the compensation recovers them.
        let mut v = vec![1.0];
        v.extend(std::iter::repeat_n(1e-17, 1000));
        let exact = 1.0 + 1000.0 * 1e-17;
        let naive: f64 = v.iter().sum();
        assert_eq!(naive, 1.0, "naive sum must drop the tail for this test to be meaningful");
        assert!((kahan_sum(&v) - exact).abs() < 1e-16, "kahan {}", kahan_sum(&v));
    }

    #[test]
    fn neumaier_handles_large_addend() {
        // Classic Kahan failure case: [1, 1e100, 1, -1e100] sums to 2.
        let v = [1.0, 1e100, 1.0, -1e100];
        assert_eq!(neumaier_sum(&v), 2.0);
    }

    #[test]
    fn pairwise_matches_naive_on_benign_input() {
        let v: Vec<f64> = (0..1000).map(|i| i as f64 * 0.25).collect();
        let exact: f64 = (0..1000).map(|i| i as f64 * 0.25).sum();
        assert_eq!(pairwise_sum(&v), exact);
    }

    #[test]
    fn reproducible_sum_is_permutation_invariant() {
        let mut v = ill_conditioned();
        let a = reproducible_sum(&v);
        v.reverse();
        let b = reproducible_sum(&v);
        // rotate for a third permutation
        v.rotate_left(17);
        let c = reproducible_sum(&v);
        assert_eq!(a.to_bits(), b.to_bits());
        assert_eq!(a.to_bits(), c.to_bits());
    }

    #[test]
    fn accumulator_tracks_residuals() {
        let mut acc = Accumulator::new();
        acc.add(1.0);
        acc.add(1e-30);
        acc.add(-1.0);
        assert_eq!(acc.value(), 1e-30);
    }

    #[test]
    fn accumulator_merge_associates() {
        let xs: Vec<f64> = (0..64).map(|i| (i as f64).exp2() * if i % 2 == 0 { 1.0 } else { -1.0 }).collect();
        let mut whole = Accumulator::new();
        for &x in &xs {
            whole.add(x);
        }
        let mut left = Accumulator::new();
        let mut right = Accumulator::new();
        for &x in &xs[..32] {
            left.add(x);
        }
        for &x in &xs[32..] {
            right.add(x);
        }
        left.merge(&right);
        assert_eq!(whole.value(), left.value());
    }

    #[test]
    fn empty_sums_are_zero() {
        assert_eq!(kahan_sum(&[]), 0.0);
        assert_eq!(neumaier_sum(&[]), 0.0);
        assert_eq!(pairwise_sum(&[]), 0.0);
        assert_eq!(reproducible_sum(&[]), 0.0);
        assert_eq!(Accumulator::new().value(), 0.0);
    }
}
