//! Typed physical units for the measurement substrate.
//!
//! The paper's evaluation mixes seconds, watts, joules, flops, and bytes in
//! nearly every table (Tflop/s, W, Gflop/J, GF/mm²). A bare `f64` carries
//! none of that, so a `time * power` vs `time / power` slip compiles
//! silently. These zero-cost newtypes make the dimensional algebra part of
//! the type system: `Watts * Seconds = Joules`, `Joules / Seconds = Watts`,
//! and mixing units is a compile error. The wrapped value is the public
//! `.0` field, in SI base units (s, W, J, flop, byte).
//!
//! Only physically meaningful products and ratios are implemented; a ratio
//! of two like quantities deliberately yields a dimensionless `f64`.

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub, SubAssign};

macro_rules! unit {
    ($(#[$doc:meta])* $name:ident, $suffix:literal) => {
        $(#[$doc])*
        #[derive(Debug, Clone, Copy, Default, PartialEq, PartialOrd)]
        pub struct $name(pub f64);

        impl $name {
            /// Zero of this unit.
            pub const ZERO: $name = $name(0.0);

            /// The wrapped value in SI base units.
            #[inline]
            pub fn value(self) -> f64 {
                self.0
            }

            /// Largest of two quantities.
            #[inline]
            pub fn max(self, other: $name) -> $name {
                $name(self.0.max(other.0))
            }

            /// Smallest of two quantities.
            #[inline]
            pub fn min(self, other: $name) -> $name {
                $name(self.0.min(other.0))
            }
        }

        impl Add for $name {
            type Output = $name;
            #[inline]
            fn add(self, rhs: $name) -> $name {
                $name(self.0 + rhs.0)
            }
        }

        impl Sub for $name {
            type Output = $name;
            #[inline]
            fn sub(self, rhs: $name) -> $name {
                $name(self.0 - rhs.0)
            }
        }

        impl AddAssign for $name {
            #[inline]
            fn add_assign(&mut self, rhs: $name) {
                self.0 += rhs.0;
            }
        }

        impl SubAssign for $name {
            #[inline]
            fn sub_assign(&mut self, rhs: $name) {
                self.0 -= rhs.0;
            }
        }

        impl Neg for $name {
            type Output = $name;
            #[inline]
            fn neg(self) -> $name {
                $name(-self.0)
            }
        }

        impl Mul<f64> for $name {
            type Output = $name;
            #[inline]
            fn mul(self, rhs: f64) -> $name {
                $name(self.0 * rhs)
            }
        }

        impl Mul<$name> for f64 {
            type Output = $name;
            #[inline]
            fn mul(self, rhs: $name) -> $name {
                $name(self * rhs.0)
            }
        }

        impl Div<f64> for $name {
            type Output = $name;
            #[inline]
            fn div(self, rhs: f64) -> $name {
                $name(self.0 / rhs)
            }
        }

        /// Ratio of two like quantities is dimensionless.
        impl Div<$name> for $name {
            type Output = f64;
            #[inline]
            fn div(self, rhs: $name) -> f64 {
                self.0 / rhs.0
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                match f.precision() {
                    Some(p) => write!(f, "{:.*} {}", p, self.0, $suffix),
                    None => write!(f, "{} {}", self.0, $suffix),
                }
            }
        }
    };
}

unit!(
    /// A duration in seconds.
    Seconds,
    "s"
);
unit!(
    /// Energy in joules.
    Joules,
    "J"
);
unit!(
    /// Power in watts.
    Watts,
    "W"
);
unit!(
    /// A count of floating-point operations.
    Flops,
    "flop"
);
unit!(
    /// A count of bytes.
    Bytes,
    "B"
);

/// `P × t = E`.
impl Mul<Seconds> for Watts {
    type Output = Joules;
    #[inline]
    fn mul(self, rhs: Seconds) -> Joules {
        Joules(self.0 * rhs.0)
    }
}

/// `t × P = E`.
impl Mul<Watts> for Seconds {
    type Output = Joules;
    #[inline]
    fn mul(self, rhs: Watts) -> Joules {
        Joules(self.0 * rhs.0)
    }
}

/// `E / t = P`.
impl Div<Seconds> for Joules {
    type Output = Watts;
    #[inline]
    fn div(self, rhs: Seconds) -> Watts {
        Watts(self.0 / rhs.0)
    }
}

/// `E / P = t`.
impl Div<Watts> for Joules {
    type Output = Seconds;
    #[inline]
    fn div(self, rhs: Watts) -> Seconds {
        Seconds(self.0 / rhs.0)
    }
}

impl Seconds {
    /// Construct from a millisecond count.
    #[inline]
    pub fn from_ms(ms: f64) -> Seconds {
        Seconds(ms * 1e-3)
    }
}

impl Flops {
    /// Throughput in Gflop/s over a duration (0 for a zero duration, the
    /// convention of the paper's zero-work rows).
    #[inline]
    pub fn gflops_over(self, t: Seconds) -> f64 {
        if t.0 > 0.0 {
            self.0 / 1e9 / t.0
        } else {
            0.0
        }
    }

    /// Energy efficiency in Gflop/J (0 for zero energy).
    #[inline]
    pub fn gflops_per_joule(self, e: Joules) -> f64 {
        if e.0 > 0.0 {
            self.0 / 1e9 / e.0
        } else {
            0.0
        }
    }
}

impl Bytes {
    /// Transfer time over a bandwidth given in GB/s.
    #[inline]
    pub fn time_at_gbs(self, gbs: f64) -> Seconds {
        Seconds(self.0 / (gbs * 1e9))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dimensional_algebra() {
        let p = Watts(300.0);
        let t = Seconds(2.0);
        let e = p * t;
        assert_eq!(e, Joules(600.0));
        assert_eq!(t * p, e);
        assert_eq!(e / t, p);
        assert_eq!(e / p, t);
        // Like-over-like is dimensionless.
        let ratio: f64 = Joules(600.0) / Joules(300.0);
        assert!((ratio - 2.0).abs() < 1e-15);
    }

    #[test]
    fn scalar_scaling_and_accumulation() {
        let mut acc = Joules::ZERO;
        acc += Watts(100.0) * Seconds(1.5);
        acc += Joules(50.0);
        acc -= Joules(100.0);
        assert_eq!(acc, Joules(100.0));
        assert_eq!(acc * 2.0, Joules(200.0));
        assert_eq!(2.0 * acc, Joules(200.0));
        assert_eq!(acc / 4.0, Joules(25.0));
        assert_eq!(-acc, Joules(-100.0));
        assert_eq!(Watts(40.0).max(Watts(300.0)), Watts(300.0));
        assert_eq!(Seconds(1.0).min(Seconds(0.5)), Seconds(0.5));
    }

    #[test]
    fn throughput_and_efficiency_helpers() {
        let f = Flops(2e12);
        assert!((f.gflops_over(Seconds(2.0)) - 1000.0).abs() < 1e-9);
        assert_eq!(f.gflops_over(Seconds(0.0)), 0.0);
        assert!((f.gflops_per_joule(Joules(100.0)) - 20.0).abs() < 1e-12);
        assert_eq!(f.gflops_per_joule(Joules(0.0)), 0.0);
        // 900 GB moved at 900 GB/s takes one second.
        assert!((Bytes(900e9).time_at_gbs(900.0) - Seconds(1.0)).0.abs() < 1e-12);
    }

    #[test]
    fn display_carries_the_suffix() {
        assert_eq!(format!("{:.1}", Watts(286.53)), "286.5 W");
        assert_eq!(format!("{}", Seconds(2.0)), "2 s");
        assert_eq!(format!("{:.0}", Joules(12.6)), "13 J");
    }

    #[test]
    fn ms_constructor() {
        assert!((Seconds::from_ms(250.0).0 - 0.25).abs() < 1e-15);
    }
}
