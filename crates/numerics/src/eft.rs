//! Error-free transformations (EFTs).
//!
//! These are the algebraic building blocks of the Ozaki scheme (paper
//! §IV-B): every floating-point sum or product can be represented *exactly*
//! as an unevaluated sum of two floats. The Ozaki splitter uses Dekker-style
//! splitting to slice matrix elements into low-precision pieces whose
//! products are exact in the matrix engine's accumulator.

/// Knuth's TwoSum: returns `(s, e)` with `s = fl(a + b)` and `a + b = s + e`
/// exactly, for any ordering of `a` and `b`.
#[inline]
pub fn two_sum(a: f64, b: f64) -> (f64, f64) {
    let s = a + b;
    let bb = s - a;
    let e = (a - (s - bb)) + (b - bb);
    (s, e)
}

/// Dekker's FastTwoSum: requires `|a| >= |b|` (or `a == 0`); one branch
/// cheaper than [`two_sum`].
#[inline]
pub fn fast_two_sum(a: f64, b: f64) -> (f64, f64) {
    debug_assert!(a == 0.0 || a.abs() >= b.abs() || a.is_nan() || b.is_nan());
    let s = a + b;
    let e = b - (s - a);
    (s, e)
}

/// Dekker's split constant for splitting an f64 into two 26-bit halves.
const SPLIT_FACTOR: f64 = ((1u64 << 27) + 1) as f64;

/// Dekker's Split: returns `(hi, lo)` with `x = hi + lo` exactly, where both
/// halves have at most 26 significand bits, so `hi * hi'` etc. are exact.
#[inline]
pub fn split(x: f64) -> (f64, f64) {
    let c = SPLIT_FACTOR * x;
    let hi = c - (c - x);
    let lo = x - hi;
    (hi, lo)
}

/// Split `x` at a given bit position: returns `(hi, lo)` with `x = hi + lo`
/// exactly, where `hi` keeps the top `bits` significand bits relative to the
/// binade of `scale` (a power of two with `scale >= |x|`).
///
/// This is the element-wise slicing primitive of the Ozaki scheme: with
/// `scale = 2^ceil(log2 max|x|)` and `bits = beta`, `hi / 2^(log2 scale -
/// beta)` is an integer of at most `beta` bits, hence exactly representable
/// in any format with a `beta`-bit significand.
#[inline]
pub fn split_at(x: f64, scale: f64, bits: u32) -> (f64, f64) {
    debug_assert!(scale > 0.0 && scale.log2().fract() == 0.0, "scale must be a power of two");
    debug_assert!(bits <= 52);
    // Rump/Ozaki extraction: adding sigma = scale * 2^(52 - bits) forces the
    // sum into the binade of sigma, whose granularity is
    // ulp(sigma) = scale * 2^(-bits); subtracting recovers hi as a multiple
    // of that quantum. |hi| <= scale implies hi's integer representation
    // hi / (scale * 2^-bits) has at most `bits`+1 bits (RNE may round up to
    // exactly 2^bits).
    let sigma = scale * (2.0f64).powi(52 - bits as i32);
    let hi = (x + sigma) - sigma;
    let lo = x - hi;
    (hi, lo)
}

/// TwoProd via FMA-free Dekker multiplication: returns `(p, e)` with
/// `p = fl(a * b)` and `a * b = p + e` exactly.
#[inline]
pub fn two_prod(a: f64, b: f64) -> (f64, f64) {
    let p = a * b;
    let (ah, al) = split(a);
    let (bh, bl) = split(b);
    let e = ((ah * bh - p) + ah * bl + al * bh) + al * bl;
    (p, e)
}

/// Dot product in doubled precision (Ogita–Rump–Oishi `Dot2`): the result is
/// as accurate as if computed in twice the working precision.
pub fn dot2(x: &[f64], y: &[f64]) -> f64 {
    assert_eq!(x.len(), y.len());
    if x.is_empty() {
        return 0.0;
    }
    let (mut p, mut s) = two_prod(x[0], y[0]);
    for i in 1..x.len() {
        let (h, r) = two_prod(x[i], y[i]);
        let (pn, q) = two_sum(p, h);
        p = pn;
        s += q + r;
    }
    p + s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn two_sum_is_exact() {
        let cases = [
            (1.0, (2.0f64).powi(-52)),
            (1e16, 1.0),
            (-1e16, 1.0),
            (0.1, 0.2),
            (1e308, -1e292),
            (3.5, -3.5),
        ];
        for (a, b) in cases {
            let (s, e) = two_sum(a, b);
            assert_eq!(s, a + b);
            assert_exact_sum(a, b, s, e);
        }
        // Known analytic case: fl(0.1) + fl(0.2) = fl(0.300..04) - 2^-55.
        let (_, e) = two_sum(0.1, 0.2);
        assert_eq!(e, -(2.0f64).powi(-55));
    }

    /// Exact sum check using 128-bit integer mantissa arithmetic. Only valid
    /// when the exponent spread of all four values is < 70 bits.
    fn assert_exact_sum(a: f64, b: f64, s: f64, e: f64) {
        fn decomp(x: f64) -> (i128, i32) {
            if x == 0.0 {
                return (0, 0);
            }
            let bits = x.to_bits();
            let raw_exp = ((bits >> 52) & 0x7ff) as i32;
            let frac = (bits & ((1u64 << 52) - 1)) as i128;
            let m = if raw_exp == 0 { frac } else { frac | (1 << 52) };
            let sign = if bits >> 63 == 1 { -1 } else { 1 };
            let exp = if raw_exp == 0 { -1074 } else { raw_exp - 1023 - 52 };
            (sign * m, exp)
        }
        let parts = [decomp(a), decomp(b), decomp(s), decomp(e)];
        let emin = parts.iter().filter(|(m, _)| *m != 0).map(|&(_, e)| e).min().unwrap();
        let align = |(m, ex): (i128, i32)| -> i128 {
            if m == 0 {
                0
            } else {
                assert!(ex - emin < 70, "exponent spread too large for i128 check");
                m << (ex - emin)
            }
        };
        assert_eq!(
            align(parts[0]) + align(parts[1]),
            align(parts[2]) + align(parts[3]),
            "two_sum not exact for ({a},{b})"
        );
    }

    #[test]
    fn fast_two_sum_matches_two_sum_when_ordered() {
        let pairs = [(2.0, 1e-20), (1e10, -3.5), (-8.0, 0.125)];
        for (a, b) in pairs {
            assert_eq!(fast_two_sum(a, b), two_sum(a, b));
        }
    }

    #[test]
    fn split_halves_have_26_bits() {
        for x in [std::f64::consts::PI, 1.0 / 3.0, 123456.789, -9.87654321e-5] {
            let (hi, lo) = split(x);
            assert_eq!(hi + lo, x);
            // Each half must be representable with 26 significand bits:
            // multiplying two such halves is exact in f64.
            let p = hi * hi;
            let (_, e) = two_prod(hi, hi);
            assert_eq!(e, 0.0, "hi*hi not exact for {x}; p={p}");
        }
    }

    #[test]
    fn split_at_extracts_top_bits() {
        let x = 0.7654321;
        let (hi, lo) = split_at(x, 1.0, 10);
        assert_eq!(hi + lo, x);
        // hi must be an integer multiple of 2^-10.
        let scaled = hi * (2.0f64).powi(10);
        assert_eq!(scaled.fract(), 0.0);
        assert!(lo.abs() <= (2.0f64).powi(-10));
    }

    #[test]
    fn two_prod_is_exact() {
        let cases = [(0.1, 0.3), (1e8 + 1.0, 1e8 - 1.0), (1.0 / 3.0, 3.0)];
        for (a, b) in cases {
            let (p, e) = two_prod(a, b);
            assert_eq!(p, a * b);
            // Check against 128-bit-ish reference using integer mantissas for
            // a simple case.
            if a == 0.1 {
                assert!(e != 0.0, "0.1*0.3 has a rounding error");
            }
            let _ = p;
        }
    }

    #[test]
    fn dot2_beats_naive_on_ill_conditioned_input() {
        // x = [1, 1e16, -1e16], y = [1, 1, 1]: exact dot = 1.
        let x = [1.0, 1e16, -1e16];
        let y = [1.0, 1.0, 1.0];
        let naive: f64 = x.iter().zip(&y).map(|(a, b)| a * b).sum();
        assert_eq!(naive, 0.0); // naive cancels to 0
        assert_eq!(dot2(&x, &y), 1.0);
    }

    #[test]
    fn dot2_empty() {
        assert_eq!(dot2(&[], &[]), 0.0);
    }
}
