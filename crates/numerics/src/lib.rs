//! # me-numerics
//!
//! Bit-exact software floating-point formats and error-free transformations.
//!
//! The paper's §IV-B (Ozaki scheme, Table VIII) depends on the *exact*
//! significand widths of the numerical formats supported by matrix engines:
//! IEEE binary16 (`F16`), bfloat16 (`Bf16`), and NVIDIA's 19-bit TF32
//! (`Tf32`). Since no matrix-engine hardware is available in this
//! environment, this crate provides software implementations with
//! round-to-nearest-even semantics, subnormal handling, and Inf/NaN
//! propagation, so that every higher layer (the ME simulator, the Ozaki
//! splitter) operates on the same numerics the paper's hardware would.
//!
//! The crate also provides the classic error-free transformations (EFTs)
//! — [`eft::two_sum`], [`eft::two_prod`], Dekker's [`eft::split`] — and a
//! family of compensated / reproducible summation algorithms used by the
//! Ozaki scheme's bitwise-reproducible accumulation (paper §IV-B, feature
//! note (1)).

pub mod dd;
pub mod eft;
pub mod error;
pub mod formats;
pub mod rng;
pub mod sum;
pub mod units;

pub use dd::{dd_dot, Dd};
pub use error::{max_abs, max_rel_err, rel_err, ulp_diff};
pub use formats::{narrow_f32_exact, Bf16, Bf16Bits, FloatFormat, RoundedValue, Tf32, F16, F16Bits};
pub use rng::Rng64;
pub use units::{Bytes, Flops, Joules, Seconds, Watts};
pub use sum::{kahan_sum, neumaier_sum, pairwise_sum, reproducible_sum, Accumulator};
