//! Seeded, deterministic pseudo-random numbers with no external crates.
//!
//! The workspace's synthetic corpora (the K-computer job log, the
//! Spack-shaped ecosystem) and the generative test harness need a small,
//! reproducible PRNG. [`Rng64`] combines the SplitMix64 finalizer (used to
//! seed and to scramble) with a xorshift* step: sub-nanosecond generation,
//! full 64-bit state, and — critically for the reproducibility claims this
//! repo makes — identical streams on every platform and toolchain.
//!
//! This is **not** a cryptographic generator; it exists so experiment
//! corpora are stable across runs, which is all the paper's methodology
//! requires.

/// A small deterministic PRNG (SplitMix64-seeded xorshift64*).
#[derive(Debug, Clone)]
pub struct Rng64 {
    state: u64,
}

impl Rng64 {
    /// Seed the generator. Any seed (including 0) is valid: the seed is
    /// passed through the SplitMix64 finalizer, which maps 0 to a
    /// well-mixed nonzero state.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut z = seed.wrapping_add(0x9e37_79b9_7f4a_7c15);
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^= z >> 31;
        Rng64 { state: z | 1 }
    }

    /// Next raw 64-bit value (xorshift64*).
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    /// Uniform `f64` in `[0, 1)` using the top 53 bits.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform `f64` in `[lo, hi)`.
    pub fn range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        debug_assert!(lo < hi, "range_f64: empty range {lo}..{hi}");
        lo + (hi - lo) * self.next_f64()
    }

    /// Uniform `usize` in `[lo, hi)`.
    pub fn range_usize(&mut self, lo: usize, hi: usize) -> usize {
        debug_assert!(lo < hi, "range_usize: empty range {lo}..{hi}");
        let span = (hi - lo) as u64;
        lo + (self.next_u64() % span) as usize
    }

    /// Bernoulli draw: `true` with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        self.next_f64() < p.clamp(0.0, 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_instances() {
        let mut a = Rng64::seed_from_u64(42);
        let mut b = Rng64::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = Rng64::seed_from_u64(1);
        let mut b = Rng64::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn zero_seed_is_usable() {
        let mut r = Rng64::seed_from_u64(0);
        let v: Vec<u64> = (0..4).map(|_| r.next_u64()).collect();
        assert!(v.iter().any(|&x| x != 0));
    }

    #[test]
    fn unit_interval_bounds_and_mean() {
        let mut r = Rng64::seed_from_u64(7);
        let n = 100_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let x = r.next_f64();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.005, "mean {mean}");
    }

    #[test]
    fn range_and_chance_respect_parameters() {
        let mut r = Rng64::seed_from_u64(9);
        for _ in 0..10_000 {
            let x = r.range_f64(-3.0, 5.0);
            assert!((-3.0..5.0).contains(&x));
            let i = r.range_usize(10, 20);
            assert!((10..20).contains(&i));
        }
        let hits = (0..100_000).filter(|_| r.chance(0.25)).count();
        let p = hits as f64 / 100_000.0;
        assert!((p - 0.25).abs() < 0.01, "empirical p {p}");
        assert!(!r.chance(0.0));
        assert!(r.chance(1.0));
    }
}
