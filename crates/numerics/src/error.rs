//! Error metrics: ULP distance, relative error, max-norm helpers.
//!
//! Used by the Ozaki accuracy experiments (Table VIII requires
//! "DGEMM-equivalent accuracy", i.e. the emulated result must be within a
//! few ULPs of the f64 reference).

/// Distance in units-in-the-last-place between two finite f64 values.
///
/// Uses the standard ordered-integer mapping of IEEE-754 bit patterns, so
/// adjacent floats have distance 1 and the measure is symmetric.
pub fn ulp_diff(a: f64, b: f64) -> u64 {
    if a == b {
        return 0;
    }
    if a.is_nan() || b.is_nan() {
        return u64::MAX;
    }
    let to_ordered = |x: f64| -> i64 {
        let bits = x.to_bits() as i64;
        if bits < 0 {
            i64::MIN.wrapping_add(bits.wrapping_neg())
        } else {
            bits
        }
    };
    let ia = to_ordered(a);
    let ib = to_ordered(b);
    ia.abs_diff(ib)
}

/// Relative error |a - b| / |b|, with b the reference. Returns absolute
/// error when the reference is zero.
pub fn rel_err(a: f64, b: f64) -> f64 {
    if b == 0.0 {
        a.abs()
    } else {
        (a - b).abs() / b.abs()
    }
}

/// Maximum relative error over paired slices.
pub fn max_rel_err(xs: &[f64], refs: &[f64]) -> f64 {
    assert_eq!(xs.len(), refs.len());
    xs.iter().zip(refs).map(|(&a, &b)| rel_err(a, b)).fold(0.0, f64::max)
}

/// Maximum absolute value of a slice.
pub fn max_abs(xs: &[f64]) -> f64 {
    xs.iter().fold(0.0f64, |m, &x| m.max(x.abs()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ulp_adjacent_is_one() {
        let x = 1.0f64;
        let next = f64::from_bits(x.to_bits() + 1);
        assert_eq!(ulp_diff(x, next), 1);
        assert_eq!(ulp_diff(next, x), 1);
    }

    #[test]
    fn ulp_across_zero() {
        let pos = f64::from_bits(1); // smallest positive subnormal
        let neg = -pos;
        assert_eq!(ulp_diff(pos, neg), 2);
        assert_eq!(ulp_diff(0.0, pos), 1);
        assert_eq!(ulp_diff(-0.0, 0.0), 0);
    }

    #[test]
    fn ulp_identical_is_zero() {
        assert_eq!(ulp_diff(std::f64::consts::PI, std::f64::consts::PI), 0);
    }

    #[test]
    fn ulp_nan_is_max() {
        assert_eq!(ulp_diff(f64::NAN, 1.0), u64::MAX);
    }

    #[test]
    fn rel_err_basics() {
        assert_eq!(rel_err(1.1, 1.0), 0.10000000000000009);
        assert_eq!(rel_err(0.0, 0.0), 0.0);
        assert_eq!(rel_err(0.5, 0.0), 0.5);
    }

    #[test]
    fn max_helpers() {
        assert_eq!(max_abs(&[1.0, -3.0, 2.0]), 3.0);
        assert_eq!(max_abs(&[]), 0.0);
        assert!(max_rel_err(&[1.0, 2.0], &[1.0, 2.0]) == 0.0);
    }
}
