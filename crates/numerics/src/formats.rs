//! Software floating-point formats.
//!
//! A [`FloatFormat`] describes a binary floating-point format by its
//! exponent and (explicit) significand bit counts. [`FloatFormat::quantize`]
//! rounds an `f64` to the nearest representable value of the format using
//! round-to-nearest-even, which is the rounding mode implemented by the
//! matrix engines surveyed in the paper's Table I.
//!
//! Concrete newtypes [`F16`], [`Bf16`], and [`Tf32`] store the quantized
//! value and guarantee (by construction) that the wrapped `f64` is exactly
//! representable in the target format.

/// Description of a binary floating-point format.
///
/// `sig_bits` counts the *explicit* fraction bits (e.g. 52 for f64,
/// 10 for IEEE binary16). The implicit leading bit is not counted, so the
/// precision of the format is `sig_bits + 1` bits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FloatFormat {
    /// Number of exponent bits.
    pub exp_bits: u32,
    /// Number of explicit significand (fraction) bits.
    pub sig_bits: u32,
}

/// Result of rounding a value into a format, with classification.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum RoundedValue {
    /// Exact zero (preserves sign).
    Zero(f64),
    /// A normal number of the target format.
    Normal(f64),
    /// A subnormal number of the target format.
    Subnormal(f64),
    /// Overflowed to infinity.
    Overflow(f64),
    /// NaN input.
    Nan,
}

impl RoundedValue {
    /// The rounded value as `f64` (NaN for `Nan`).
    #[inline]
    pub fn value(self) -> f64 {
        match self {
            RoundedValue::Zero(v)
            | RoundedValue::Normal(v)
            | RoundedValue::Subnormal(v)
            | RoundedValue::Overflow(v) => v,
            RoundedValue::Nan => f64::NAN,
        }
    }
}

impl FloatFormat {
    /// IEEE-754 binary16: 5 exponent bits, 10 fraction bits.
    pub const F16: FloatFormat = FloatFormat { exp_bits: 5, sig_bits: 10 };
    /// bfloat16: 8 exponent bits, 7 fraction bits.
    pub const BF16: FloatFormat = FloatFormat { exp_bits: 8, sig_bits: 7 };
    /// NVIDIA TF32: 8 exponent bits, 10 fraction bits (19-bit format).
    pub const TF32: FloatFormat = FloatFormat { exp_bits: 8, sig_bits: 10 };
    /// IEEE-754 binary32.
    pub const F32: FloatFormat = FloatFormat { exp_bits: 8, sig_bits: 23 };
    /// IEEE-754 binary64.
    pub const F64: FloatFormat = FloatFormat { exp_bits: 11, sig_bits: 52 };

    /// Exponent bias (`2^(exp_bits-1) - 1`).
    #[inline]
    pub const fn bias(&self) -> i32 {
        (1i32 << (self.exp_bits - 1)) - 1
    }

    /// Maximum unbiased exponent of a normal number.
    #[inline]
    pub const fn emax(&self) -> i32 {
        self.bias()
    }

    /// Minimum unbiased exponent of a normal number.
    #[inline]
    pub const fn emin(&self) -> i32 {
        1 - self.bias()
    }

    /// Precision in bits, including the implicit leading bit.
    #[inline]
    pub const fn precision(&self) -> u32 {
        self.sig_bits + 1
    }

    /// Unit roundoff `u = 2^-precision`.
    #[inline]
    pub fn unit_roundoff(&self) -> f64 {
        (2.0f64).powi(-(self.precision() as i32))
    }

    /// Largest finite value of the format.
    pub fn max_finite(&self) -> f64 {
        // (2 - 2^-sig_bits) * 2^emax
        let frac = 2.0 - (2.0f64).powi(-(self.sig_bits as i32));
        frac * (2.0f64).powi(self.emax())
    }

    /// Smallest positive normal value.
    pub fn min_normal(&self) -> f64 {
        pow2(self.emin())
    }

    /// Smallest positive subnormal value.
    pub fn min_subnormal(&self) -> f64 {
        pow2(self.emin() - self.sig_bits as i32)
    }

    /// Round `x` to the nearest representable value (RNE), classifying the
    /// result.
    ///
    /// The implementation decomposes the `f64` bit pattern directly so that
    /// the rounding is bit-exact rather than depending on transcendental
    /// functions.
    pub fn round(&self, x: f64) -> RoundedValue {
        if x.is_nan() {
            return RoundedValue::Nan;
        }
        if x == 0.0 {
            return RoundedValue::Zero(x); // preserves -0.0
        }
        if x.is_infinite() {
            return RoundedValue::Overflow(x);
        }

        let bits = x.to_bits();
        let sign = if bits >> 63 == 1 { -1.0f64 } else { 1.0 };
        let raw_exp = ((bits >> 52) & 0x7ff) as i32;
        let frac = bits & ((1u64 << 52) - 1);

        // Unbiased exponent and 53-bit significand (with implicit bit) of x.
        // f64 subnormals are far below every target format's range except
        // f64 itself; normalize them explicitly.
        let (mut e, sig) = if raw_exp == 0 {
            // subnormal f64: value = frac * 2^(-1022-52)
            let shift = frac.leading_zeros() as i32 - 11; // make bit 52 the leading bit
            (-1022 - shift, frac << shift)
        } else {
            (raw_exp - 1023, frac | (1u64 << 52))
        };
        debug_assert!(sig >> 52 == 1);

        let p = self.sig_bits;
        if e >= self.emin() {
            // Normal range of the target format: round 53-bit significand to
            // p+1 bits.
            let shift = 52 - p;
            if shift == 0 {
                // Target has f64's precision: the value is already exact.
                if e > self.emax() {
                    return RoundedValue::Overflow(sign * f64::INFINITY);
                }
                return RoundedValue::Normal(x);
            }
            let keep = sig >> shift;
            let rem = sig & ((1u64 << shift) - 1);
            let half = 1u64 << (shift - 1);
            let mut keep = keep;
            if rem > half || (rem == half && keep & 1 == 1) {
                keep += 1;
                if keep >> (p + 1) == 1 {
                    // significand overflowed to 2.0
                    keep >>= 1;
                    e += 1;
                }
            }
            if e > self.emax() {
                return RoundedValue::Overflow(sign * f64::INFINITY);
            }
            let mantissa = keep as f64 * (2.0f64).powi(-(p as i32));
            return RoundedValue::Normal(sign * mantissa * (2.0f64).powi(e));
        }

        // Subnormal range (or underflow to zero) of the target format.
        let quantum_exp = self.emin() - p as i32;
        if e < quantum_exp - 1 {
            // Magnitude below half the smallest subnormal: rounds to zero.
            return RoundedValue::Zero(sign * 0.0);
        }
        // Express |x| in units of the subnormal quantum and round to an
        // integer with ties-to-even. The shift is small enough that the
        // scaled value is exactly representable.
        let q = pow2(quantum_exp);
        let scaled = x.abs() / q;
        let n = round_ties_even(scaled);
        if n == 0.0 {
            return RoundedValue::Zero(sign * 0.0);
        }
        let v = sign * n * q;
        if v.abs() >= self.min_normal() {
            RoundedValue::Normal(v)
        } else {
            RoundedValue::Subnormal(v)
        }
    }

    /// Round `x` to the format and return the value (Inf on overflow).
    #[inline]
    pub fn quantize(&self, x: f64) -> f64 {
        self.round(x).value()
    }

    /// Whether `x` is exactly representable in the format.
    pub fn representable(&self, x: f64) -> bool {
        if x.is_nan() {
            return true;
        }
        self.quantize(x) == x
    }
}

/// Exact power of two `2^k` for any `k` representable in f64, including the
/// subnormal range (`f64::powi` underflows to zero below `2^-1022` on some
/// code paths, so we construct the bit pattern directly).
#[inline]
pub fn pow2(k: i32) -> f64 {
    if k >= -1022 {
        debug_assert!(k <= 1023);
        f64::from_bits(((k + 1023) as u64) << 52)
    } else {
        debug_assert!(k >= -1074);
        f64::from_bits(1u64 << (k + 1074))
    }
}

/// Checked narrowing conversion `f64 -> f32` for values that must be
/// exactly representable in `f32`.
///
/// The Ozaki splitting kernels narrow sliced significands into the matrix
/// engine's multiply format; the scheme's exactness proof requires every
/// such value to fit without rounding. This helper is the sanctioned
/// narrowing path (the `no-as-narrowing` lint of `me-verify` forbids bare
/// `as f32` in kernel code): it performs the conversion and, in debug
/// builds, asserts the round trip is lossless.
#[inline]
pub fn narrow_f32_exact(x: f64) -> f32 {
    let narrowed = x as f32;
    debug_assert!(
        f64::from(narrowed) == x || x.is_nan(),
        "narrow_f32_exact: {x:e} is not exactly representable in f32"
    );
    narrowed
}

/// Round-to-nearest, ties-to-even on a non-negative finite f64.
#[inline]
fn round_ties_even(x: f64) -> f64 {
    // f64::round_ties_even is stable; keep a local wrapper so the rounding
    // semantics used by the formats are documented in one place.
    x.round_ties_even()
}

macro_rules! soft_float {
    ($(#[$meta:meta])* $name:ident, $fmt:expr) => {
        $(#[$meta])*
        #[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
        pub struct $name(f64);

        // add/sub/mul are the natural names here; operator traits are not
        // implemented so every format-rounding point stays an explicit call.
        #[allow(clippy::should_implement_trait)]
        impl $name {
            /// The format descriptor of this type.
            pub const FORMAT: FloatFormat = $fmt;

            /// Construct by rounding an `f64` to the format (RNE).
            #[inline]
            pub fn from_f64(x: f64) -> Self {
                $name(Self::FORMAT.quantize(x))
            }

            /// The exactly-representable value as `f64`.
            #[inline]
            pub fn to_f64(self) -> f64 {
                self.0
            }

            /// Format-rounded addition.
            #[inline]
            pub fn add(self, rhs: Self) -> Self {
                Self::from_f64(self.0 + rhs.0)
            }

            /// Format-rounded subtraction.
            #[inline]
            pub fn sub(self, rhs: Self) -> Self {
                Self::from_f64(self.0 - rhs.0)
            }

            /// Format-rounded multiplication.
            #[inline]
            pub fn mul(self, rhs: Self) -> Self {
                Self::from_f64(self.0 * rhs.0)
            }

            /// Exact product in f64 (used by hybrid-accumulation engines:
            /// the product of two values with `sig_bits+1 <= 26`-bit
            /// significands is exact in f64).
            #[inline]
            pub fn mul_exact_f64(self, rhs: Self) -> f64 {
                self.0 * rhs.0
            }
        }

        impl From<f64> for $name {
            fn from(x: f64) -> Self {
                Self::from_f64(x)
            }
        }

        impl From<$name> for f64 {
            fn from(x: $name) -> f64 {
                x.to_f64()
            }
        }
    };
}

soft_float!(
    /// IEEE-754 binary16 value, stored as its exactly-representable `f64`.
    F16,
    FloatFormat::F16
);
soft_float!(
    /// bfloat16 value, stored as its exactly-representable `f64`.
    Bf16,
    FloatFormat::BF16
);
soft_float!(
    /// NVIDIA TF32 value (8-bit exponent, 10-bit fraction), stored as its
    /// exactly-representable `f64`. TF32 is the A100's hybrid 19-bit format
    /// described in the paper's Table I, footnote 3.
    Tf32,
    FloatFormat::TF32
);

impl F16 {
    /// Encode to the IEEE binary16 bit pattern.
    pub fn to_bits(self) -> u16 {
        encode(self.0, FloatFormat::F16) as u16
    }

    /// Decode from an IEEE binary16 bit pattern.
    pub fn from_bits(bits: u16) -> Self {
        F16(decode(bits as u32, FloatFormat::F16))
    }
}

impl Bf16 {
    /// Encode to the bfloat16 bit pattern.
    pub fn to_bits(self) -> u16 {
        encode(self.0, FloatFormat::BF16) as u16
    }

    /// Decode from a bfloat16 bit pattern.
    pub fn from_bits(bits: u16) -> Self {
        Bf16(decode(bits as u32, FloatFormat::BF16))
    }
}

/// Encode a value already exactly representable in `fmt` into the format's
/// packed bit pattern (sign | exponent | fraction).
fn encode(x: f64, fmt: FloatFormat) -> u32 {
    let sign = if x.is_sign_negative() { 1u32 << (fmt.exp_bits + fmt.sig_bits) } else { 0 };
    if x.is_nan() {
        // Canonical quiet NaN.
        let exp = ((1u32 << fmt.exp_bits) - 1) << fmt.sig_bits;
        return sign | exp | (1 << (fmt.sig_bits - 1));
    }
    if x == 0.0 {
        return sign;
    }
    if x.is_infinite() {
        let exp = ((1u32 << fmt.exp_bits) - 1) << fmt.sig_bits;
        return sign | exp;
    }
    let a = x.abs();
    let e = a.log2().floor() as i32;
    // Guard against log2 edge cases at powers of two.
    let e = if (2.0f64).powi(e + 1) <= a { e + 1 } else { e };
    if e < fmt.emin() {
        // subnormal
        let q = pow2(fmt.emin() - fmt.sig_bits as i32);
        let frac = (a / q) as u32;
        return sign | frac;
    }
    let mant = a / (2.0f64).powi(e); // in [1,2)
    let frac = ((mant - 1.0) * (2.0f64).powi(fmt.sig_bits as i32)) as u32;
    let biased = (e + fmt.bias()) as u32;
    sign | (biased << fmt.sig_bits) | frac
}

/// Decode a packed bit pattern of `fmt` into the exact `f64` value.
fn decode(bits: u32, fmt: FloatFormat) -> f64 {
    let sig_mask = (1u32 << fmt.sig_bits) - 1;
    let exp_mask = (1u32 << fmt.exp_bits) - 1;
    let frac = bits & sig_mask;
    let exp = (bits >> fmt.sig_bits) & exp_mask;
    let sign = if (bits >> (fmt.exp_bits + fmt.sig_bits)) & 1 == 1 { -1.0 } else { 1.0 };
    if exp == exp_mask {
        return if frac == 0 { sign * f64::INFINITY } else { f64::NAN };
    }
    if exp == 0 {
        let q = pow2(fmt.emin() - fmt.sig_bits as i32);
        return sign * frac as f64 * q;
    }
    let e = exp as i32 - fmt.bias();
    let mant = 1.0 + frac as f64 * (2.0f64).powi(-(fmt.sig_bits as i32));
    sign * mant * (2.0f64).powi(e)
}

// ---------------------------------------------------------------------
// Compact half-precision storage (the GEMM-facing bit formats).
//
// The soft [`F16`] / [`Bf16`] newtypes above store the exactly-
// representable f64 — convenient for the modeled engines, but 4x too wide
// for a packed GEMM operand. [`F16Bits`] / [`Bf16Bits`] are the storage
// duals: a bare `u16` bit pattern with a **bit-exact** `f32` codec. The
// narrowing direction is IEEE round-to-nearest-even computed on integer
// bit patterns (no float arithmetic, no double rounding); the widening
// direction is exact (every f16/bf16 value is representable in f32), so
// `to_f32(from_f32(x))` is the unique RNE-rounded neighbour of `x` and
// `from_f32(to_f32(h)) == h` for every non-NaN pattern `h`.
// ---------------------------------------------------------------------

/// IEEE-754 binary16 stored as its 16-bit pattern, with a bit-exact
/// `f32` codec. This is the operand storage type of the half-precision
/// GEMM path: `me-linalg` packs `F16Bits` panels while widening to `f32`
/// through [`F16Bits::to_f32`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct F16Bits(pub u16);

/// bfloat16 stored as its 16-bit pattern, with a bit-exact `f32` codec
/// (widening is `bits << 16`; narrowing rounds the low 16 f32 bits away
/// with ties-to-even).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Bf16Bits(pub u16);

impl F16Bits {
    /// Positive zero.
    pub const ZERO: F16Bits = F16Bits(0);

    /// Narrow an `f32` to binary16 with round-to-nearest-even, computed
    /// entirely on the integer bit pattern: normals round the 24-bit
    /// significand to 11 bits (with exponent carry), values below
    /// `2^-14` round on the fixed `2^-24` subnormal quantum, results at
    /// or beyond `65520` overflow to infinity, and NaN canonicalizes to
    /// a sign-preserving quiet NaN.
    pub fn from_f32(x: f32) -> F16Bits {
        let bits = x.to_bits();
        let sign = ((bits >> 16) & 0x8000) as u16;
        let abs = bits & 0x7fff_ffff;
        if abs >= 0x7f80_0000 {
            // Inf stays Inf; every NaN payload canonicalizes (quiet,
            // sign preserved) — mirroring the soft-path `encode`.
            return F16Bits(if abs == 0x7f80_0000 { sign | 0x7c00 } else { sign | 0x7e00 });
        }
        let exp = (abs >> 23) as i32 - 127;
        if exp >= 16 {
            // |x| >= 2^16 > 65519.999…: past even the round-down edge.
            return F16Bits(sign | 0x7c00);
        }
        // 24-bit significand with the implicit bit made explicit; f32
        // subnormals (exp field 0) are < 2^-126, far below half the f16
        // quantum, and fall through the shift clamp to zero.
        let mant = if abs >> 23 == 0 { abs } else { (abs & 0x007f_ffff) | 0x0080_0000 };
        // Normals drop 13 fraction bits; each step below emin = -14
        // widens the drop by one (the subnormal quantum is fixed at
        // 2^-24). Beyond 24 dropped bits the remainder can never reach
        // the rounding half, so the result is an exact zero.
        let shift = if exp >= -14 { 13 } else { 13 + (-14 - exp) as u32 };
        if shift > 24 {
            return F16Bits(sign);
        }
        let mut keep = mant >> shift;
        let rem = mant & ((1u32 << shift) - 1);
        let half = 1u32 << (shift - 1);
        if rem > half || (rem == half && keep & 1 == 1) {
            keep += 1;
        }
        let mut e = exp.max(-15); // subnormal results carry via `keep` alone
        if keep >> 11 == 1 {
            // Significand rounded up to 2.0: renormalize.
            keep >>= 1;
            e += 1;
        }
        if exp < -14 {
            // Subnormal grid: `keep` IS the low bit pattern, and a
            // round-up to 1024 lands exactly on min-normal's encoding.
            return F16Bits(sign | keep as u16);
        }
        if e > 15 {
            return F16Bits(sign | 0x7c00);
        }
        F16Bits(sign | (((e + 15) as u32) << 10) as u16 | (keep & 0x3ff) as u16)
    }

    /// Widen to `f32` — exact for every pattern (binary16 ⊂ binary32);
    /// NaN payloads are preserved and quieted.
    #[inline]
    pub fn to_f32(self) -> f32 {
        let bits = self.0 as u32;
        let sign = (bits & 0x8000) << 16;
        let exp = (bits >> 10) & 0x1f;
        let frac = bits & 0x3ff;
        if exp == 0x1f {
            let nan = if frac != 0 { 0x0040_0000 | (frac << 13) } else { 0 };
            return f32::from_bits(sign | 0x7f80_0000 | nan);
        }
        if exp == 0 {
            if frac == 0 {
                return f32::from_bits(sign);
            }
            // Normalize the subnormal: bring the leading bit to position
            // 10, each shift step lowering the exponent below -14.
            let shift = frac.leading_zeros() - 21;
            let e = (-14 - shift as i32 + 127) as u32;
            return f32::from_bits(sign | (e << 23) | (((frac << shift) & 0x3ff) << 13));
        }
        let e = (exp as i32 - 15 + 127) as u32;
        f32::from_bits(sign | (e << 23) | (frac << 13))
    }

    /// The raw bit pattern.
    #[inline]
    pub fn to_bits(self) -> u16 {
        self.0
    }

    /// Wrap a raw bit pattern.
    #[inline]
    pub fn from_bits(bits: u16) -> F16Bits {
        F16Bits(bits)
    }

    /// The soft (f64-backed) view of the same value, for cross-checking
    /// against [`FloatFormat::F16`].
    pub fn to_soft(self) -> F16 {
        F16::from_bits(self.0)
    }
}

impl Bf16Bits {
    /// Positive zero.
    pub const ZERO: Bf16Bits = Bf16Bits(0);

    /// Narrow an `f32` to bfloat16 with round-to-nearest-even: the low
    /// 16 bits round away on the integer pattern, with mantissa carry
    /// propagating naturally into the exponent (so max-finite + half-ulp
    /// overflows to infinity exactly as IEEE prescribes). NaN
    /// canonicalizes to a sign-preserving quiet NaN.
    pub fn from_f32(x: f32) -> Bf16Bits {
        let bits = x.to_bits();
        if bits & 0x7fff_ffff > 0x7f80_0000 {
            return Bf16Bits((((bits >> 16) & 0x8000) | 0x7fc0) as u16);
        }
        let mut keep = bits >> 16;
        let rem = bits & 0xffff;
        if rem > 0x8000 || (rem == 0x8000 && keep & 1 == 1) {
            keep += 1; // carries through exponent; 0x7f7f + 1 = Inf
        }
        Bf16Bits(keep as u16)
    }

    /// Widen to `f32` — exact for every pattern (`bits << 16`).
    #[inline]
    pub fn to_f32(self) -> f32 {
        f32::from_bits((self.0 as u32) << 16)
    }

    /// The raw bit pattern.
    #[inline]
    pub fn to_bits(self) -> u16 {
        self.0
    }

    /// Wrap a raw bit pattern.
    #[inline]
    pub fn from_bits(bits: u16) -> Bf16Bits {
        Bf16Bits(bits)
    }

    /// The soft (f64-backed) view of the same value, for cross-checking
    /// against [`FloatFormat::BF16`].
    pub fn to_soft(self) -> Bf16 {
        Bf16::from_bits(self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn f16_constants() {
        let f = FloatFormat::F16;
        assert_eq!(f.bias(), 15);
        assert_eq!(f.emax(), 15);
        assert_eq!(f.emin(), -14);
        assert_eq!(f.precision(), 11);
        assert_eq!(f.max_finite(), 65504.0);
        assert_eq!(f.min_normal(), 6.103515625e-05);
        assert_eq!(f.min_subnormal(), 5.960464477539063e-08);
    }

    #[test]
    fn bf16_constants() {
        let f = FloatFormat::BF16;
        assert_eq!(f.bias(), 127);
        assert_eq!(f.precision(), 8);
        // bf16 max = 0x7f7f = 3.3895e38
        let m = f.max_finite();
        assert!((m - 3.3895313892515355e38).abs() / m < 1e-12);
    }

    #[test]
    fn quantize_exact_values() {
        for v in [0.0, 1.0, -1.0, 0.5, 2.0, 1024.0, -0.25, 65504.0] {
            assert_eq!(FloatFormat::F16.quantize(v), v, "{v} should be exact in f16");
        }
    }

    #[test]
    fn quantize_rounds_to_nearest_even() {
        // 1 + 2^-11 is exactly halfway between 1 and 1+2^-10 in f16;
        // RNE picks the even significand, i.e. 1.0.
        let x = 1.0 + (2.0f64).powi(-11);
        assert_eq!(FloatFormat::F16.quantize(x), 1.0);
        // 1 + 3*2^-11 is halfway between 1+2^-10 and 1+2^-9; even is 1+2^-9.
        let x = 1.0 + 3.0 * (2.0f64).powi(-11);
        assert_eq!(FloatFormat::F16.quantize(x), 1.0 + (2.0f64).powi(-9));
        // Just above the halfway point rounds up.
        let x = 1.0 + (2.0f64).powi(-11) + (2.0f64).powi(-30);
        assert_eq!(FloatFormat::F16.quantize(x), 1.0 + (2.0f64).powi(-10));
    }

    #[test]
    fn quantize_overflow_to_inf() {
        assert_eq!(FloatFormat::F16.quantize(1e6), f64::INFINITY);
        assert_eq!(FloatFormat::F16.quantize(-1e6), f64::NEG_INFINITY);
        // Values between max finite and the overflow threshold round down.
        assert_eq!(FloatFormat::F16.quantize(65519.0), 65504.0);
        assert_eq!(FloatFormat::F16.quantize(65520.0), f64::INFINITY);
    }

    #[test]
    fn quantize_subnormals() {
        let f = FloatFormat::F16;
        let q = f.min_subnormal();
        assert_eq!(f.quantize(q), q);
        assert_eq!(f.quantize(q * 3.0), q * 3.0);
        assert_eq!(f.quantize(q * 0.4), 0.0);
        // Exactly half a quantum rounds to even (zero).
        assert_eq!(f.quantize(q * 0.5), 0.0);
        assert_eq!(f.quantize(q * 1.5), q * 2.0);
        // Sign of zero is preserved.
        assert!(f.quantize(-0.0).is_sign_negative());
        assert!(f.quantize(-(q * 0.4)).is_sign_negative());
    }

    #[test]
    fn quantize_nan_and_inf() {
        assert!(FloatFormat::F16.quantize(f64::NAN).is_nan());
        assert_eq!(FloatFormat::F16.quantize(f64::INFINITY), f64::INFINITY);
        assert_eq!(FloatFormat::BF16.quantize(f64::NEG_INFINITY), f64::NEG_INFINITY);
    }

    #[test]
    fn f64_format_is_identity() {
        for v in [1.0, std::f64::consts::PI, 1e-300, 1e300, 5e-324, f64::MAX] {
            assert_eq!(FloatFormat::F64.quantize(v), v);
        }
    }

    #[test]
    fn f32_format_matches_hardware_f32() {
        let mut x = 0.1f64;
        for _ in 0..100 {
            let soft = FloatFormat::F32.quantize(x);
            let hard = x as f32 as f64;
            assert_eq!(soft, hard, "mismatch at {x}");
            x = x * 1.7 + 0.3;
        }
    }

    #[test]
    fn bit_roundtrip_f16() {
        for bits in [0u16, 1, 0x3c00, 0x7bff, 0x0400, 0x03ff, 0x8001, 0xfbff] {
            let v = F16::from_bits(bits);
            assert_eq!(v.to_bits(), bits, "roundtrip failed for {bits:#06x}");
        }
        // Inf and NaN patterns.
        assert_eq!(F16::from_bits(0x7c00).to_f64(), f64::INFINITY);
        assert!(F16::from_bits(0x7e00).to_f64().is_nan());
    }

    #[test]
    fn bf16_truncation_semantics() {
        // bf16(1/3) should equal f32 bits rounded to 8-bit significand.
        let v = Bf16::from_f64(1.0 / 3.0);
        assert!((v.to_f64() - 1.0 / 3.0).abs() < (2.0f64).powi(-9));
        assert!(FloatFormat::BF16.representable(v.to_f64()));
    }

    #[test]
    fn tf32_has_f16_precision_with_f32_range() {
        // Precision like f16:
        assert_eq!(FloatFormat::TF32.precision(), FloatFormat::F16.precision());
        // Range like f32: 1e38 representable (finite).
        assert!(FloatFormat::TF32.quantize(1e38).is_finite());
        assert!(FloatFormat::F16.quantize(1e38).is_infinite());
    }

    #[test]
    fn representable_checks() {
        assert!(FloatFormat::F16.representable(0.5));
        assert!(!FloatFormat::F16.representable(0.1));
        assert!(FloatFormat::F32.representable(0.5));
    }

    #[test]
    fn soft_arith_rounds() {
        let a = F16::from_f64(1.0);
        let b = F16::from_f64((2.0f64).powi(-11));
        // 1 + 2^-11 rounds back to 1 in f16.
        assert_eq!(a.add(F16::from_f64(b.to_f64())).to_f64(), 1.0);
    }
}

#[cfg(test)]
mod exhaustive_tests {
    use super::*;

    /// Every one of the 65,536 binary16 bit patterns decodes to a value the
    /// format round-trips exactly: decode -> quantize (identity) -> encode
    /// recovers the bits. The canonical-NaN exception aside, this pins the
    /// entire f16 codec bit-for-bit.
    #[test]
    fn f16_all_bit_patterns_roundtrip() {
        for bits in 0..=u16::MAX {
            let v = F16::from_bits(bits);
            let x = v.to_f64();
            if x.is_nan() {
                // All NaN payloads canonicalize; just confirm NaN-ness.
                assert!(FloatFormat::F16.quantize(x).is_nan());
                continue;
            }
            assert_eq!(
                FloatFormat::F16.quantize(x),
                x,
                "decoded value of {bits:#06x} must be exactly representable"
            );
            assert_eq!(v.to_bits(), bits, "encode(decode({bits:#06x})) mismatch");
        }
    }

    /// Quantization is monotone and correctly rounded between neighbours:
    /// for every pair of consecutive positive f16 values (a, b), points
    /// below the midpoint round to a, points above round to b, and the
    /// midpoint ties to the even significand. Walks the entire positive
    /// finite f16 bit space.
    #[test]
    fn f16_quantize_monotone_between_all_neighbours() {
        let f = FloatFormat::F16;
        for bits in 0..0x7bffu16 {
            let a = F16::from_bits(bits).to_f64();
            let b = F16::from_bits(bits + 1).to_f64();
            debug_assert!(a < b);
            let mid = (a + b) / 2.0; // exact: a,b have short significands
            let qa = f.quantize(a + (b - a) * 0.25);
            let qb = f.quantize(a + (b - a) * 0.75);
            assert_eq!(qa, a, "below-midpoint must round down at {bits:#06x}");
            assert_eq!(qb, b, "above-midpoint must round up at {bits:#06x}");
            let qm = f.quantize(mid);
            let even = if bits & 1 == 0 { a } else { b };
            assert_eq!(qm, even, "tie must go to even at {bits:#06x}");
        }
    }

    /// bf16's 65,536 patterns likewise.
    #[test]
    fn bf16_all_bit_patterns_roundtrip() {
        for bits in 0..=u16::MAX {
            let v = Bf16::from_bits(bits);
            let x = v.to_f64();
            if x.is_nan() {
                continue;
            }
            assert_eq!(FloatFormat::BF16.quantize(x), x, "{bits:#06x}");
            assert_eq!(v.to_bits(), bits, "{bits:#06x}");
        }
    }

    /// f16 quantization agrees with reference conversion through f32
    /// rounding on a large sample (f64 -> f16 directly must equal
    /// f64 -> f32 -> f16 whenever the double rounding is benign; we only
    /// assert the cases where both paths land on representable values).
    #[test]
    fn f16_matches_two_step_rounding_when_benign() {
        let mut state = 0x1234_5678_9abc_def0u64;
        for _ in 0..200_000 {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let u = ((state >> 33) as f64 / (1u64 << 31) as f64) - 0.5;
            let x = u * 1000.0;
            let direct = FloatFormat::F16.quantize(x);
            let via_f32 = FloatFormat::F16.quantize(x as f32 as f64);
            // Double rounding can differ by at most one ulp; both must be
            // representable and within one ulp of each other.
            assert!(FloatFormat::F16.representable(direct));
            let ulps = crate::error::ulp_diff(direct, via_f32);
            assert!(ulps <= 1 << 42, "paths diverged wildly at {x}");
        }
    }
}
