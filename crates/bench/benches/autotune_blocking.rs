//! GEMMbench-style blocking autotune: sweep, persist, verify, report.
//!
//! Runs the `me_linalg::blas3::autotune` startup sweep — every runnable
//! kernel variant × the `(mc, kc, nc)` candidate grid — through
//! [`ensure_autotuned`], which persists the winners to
//! `artifacts/autotune.json` and installs them as runtime blocking
//! overrides (skipping any variant pinned by `ME_BLOCKING`; the knob
//! priority is env > artifact > compiled defaults). A second
//! `ensure_autotuned` call must then be a pure artifact load: the sweep
//! runs once per machine, not once per process.
//!
//! The report prints the per-variant winners against the compiled
//! default blocking, and the bench re-times the default vs the winner so
//! the artifact's claim is checked where it was made. Numerics gate: the
//! winner's blocking must stay bitwise identical to the default whenever
//! its `kc` matches, and within FLOP-counted tolerance otherwise (the §9
//! contract — only `kc` is numerically observable).
//!
//! `ME_BENCH_SMOKE=1` swaps in `SweepConfig::QUICK` for the CI gate.

use std::path::Path;
use std::path::PathBuf;
use std::time::Instant;

use me_bench::bench_matrix;
use me_linalg::blas3::autotune::{ensure_autotuned, read_artifact, SweepConfig};
use me_linalg::{blocking_for, gemm_tiled_with_blocking, set_blocking_override, Blocking, Mat};

fn time_blocking(
    variant: me_linalg::KernelVariant,
    blocking: Blocking,
    a: &Mat<f64>,
    b: &Mat<f64>,
    reps: usize,
) -> f64 {
    let mut c = Mat::zeros(a.rows(), b.cols());
    gemm_tiled_with_blocking(variant, blocking, 1.0, a, b, 0.0, &mut c); // warm-up
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let t0 = Instant::now();
        gemm_tiled_with_blocking(variant, blocking, 1.0, a, b, 0.0, &mut c);
        best = best.min(t0.elapsed().as_secs_f64());
    }
    best
}

fn main() {
    let smoke = std::env::var_os("ME_BENCH_SMOKE").is_some();
    let config = if smoke { SweepConfig::QUICK } else { SweepConfig::DEFAULT };
    // Workspace-root artifacts/, next to the other emitted artifacts
    // (benches run with the package dir as cwd).
    let path: PathBuf =
        Path::new(env!("CARGO_MANIFEST_DIR")).join("../..").join("artifacts/autotune.json");
    let path = path.as_path();

    let t0 = Instant::now();
    let result = ensure_autotuned(path, config).expect("sweep and artifact write succeed");
    let first = t0.elapsed().as_secs_f64();
    let t0 = Instant::now();
    let reloaded = ensure_autotuned(path, config).expect("artifact reload succeeds");
    let reload = t0.elapsed().as_secs_f64();
    // The artifact rounds gflops to three decimals, so compare the
    // load-bearing fields (shape, winners) exactly and the timing
    // telemetry to artifact precision.
    assert_eq!(reloaded.shape, result.shape, "reload must not re-sweep");
    assert_eq!(reloaded.entries.len(), result.entries.len());
    for (r, s) in reloaded.entries.iter().zip(&result.entries) {
        assert_eq!((r.variant, r.blocking), (s.variant, s.blocking), "winner changed on reload");
        assert!((r.gflops - s.gflops).abs() <= 1e-3, "gflops drifted beyond artifact rounding");
    }
    assert!(
        read_artifact(path).expect("artifact parses").is_some(),
        "{} must exist after the sweep",
        path.display()
    );

    let (m, k, n) = result.shape;
    println!(
        "autotune_blocking: shape {m}x{k}x{n}, artifact {} ({first:.3} s sweep, {reload:.6} s reload)",
        path.display()
    );
    let a = bench_matrix(m, k, 11);
    let b = bench_matrix(k, n, 13);
    let flops = 2.0 * (m as f64) * (k as f64) * (n as f64);
    let reps = config.reps.max(1);
    for e in &result.entries {
        // ensure_autotuned applied the winners; blocking_for must agree
        // unless ME_BLOCKING pinned this variant.
        let active = blocking_for(e.variant);
        let pinned = me_linalg::blas3::blocking::blocking_env_configured(e.variant);
        assert!(
            pinned || active == e.blocking,
            "{}: applied blocking {active} disagrees with artifact winner {}",
            e.variant.name(),
            e.blocking
        );
        let t_def = time_blocking(e.variant, Blocking::DEFAULT, &a, &b, reps);
        let t_win = time_blocking(e.variant, e.blocking, &a, &b, reps);
        println!(
            "  {:<8} default {}  {:>7.2} GF/s | tuned {}  {:>7.2} GF/s  ({:+.1}% vs default){}",
            e.variant.name(),
            Blocking::DEFAULT,
            flops / t_def / 1e9,
            e.blocking,
            flops / t_win / 1e9,
            100.0 * (t_def / t_win - 1.0),
            if pinned { "  [ME_BLOCKING pinned]" } else { "" }
        );
    }
    assert!(!result.entries.is_empty(), "sweep must cover at least the scalar variant");

    // Leave the process-global dispatch the way a fresh process would
    // see it (benches share a cargo invocation with other targets).
    for e in &result.entries {
        set_blocking_override(e.variant, None);
    }
}
