//! One benchmark group per paper artifact: times the full regeneration and
//! prints each artifact once so `cargo bench` doubles as the paper's
//! evaluation run.

use me_bench::crit::Criterion;
use me_bench::{criterion_group, criterion_main};
use std::sync::Once;

static PRINT_ONCE: Once = Once::new();

fn print_artifacts() {
    PRINT_ONCE.call_once(|| {
        for a in me_core::run_all() {
            println!("\n### {} — {}\n{}", a.id, a.headline, a.rendered);
        }
    });
}

fn bench_table1(c: &mut Criterion) {
    print_artifacts();
    c.bench_function("table1_catalog", |b| b.iter(me_core::experiments::table1));
}

fn bench_table2(c: &mut Criterion) {
    c.bench_function("table2_vector_energy", |b| b.iter(me_core::experiments::table2));
}

fn bench_fig1(c: &mut Criterion) {
    c.bench_function("fig1_power_trace", |b| b.iter(me_core::experiments::fig1));
}

fn bench_table3(c: &mut Criterion) {
    let mut g = c.benchmark_group("table3_spack_deps");
    g.sample_size(20);
    g.bench_function("generate_and_analyze", |b| b.iter(me_core::experiments::table3));
    let eco = me_survey::spack_ecosystem(1);
    g.bench_function("bfs_distances_only", |b| b.iter(|| eco.distances()));
    g.finish();
}

fn bench_fig2(c: &mut Criterion) {
    c.bench_function("fig2_resnet_energy", |b| b.iter(me_core::experiments::fig2));
}

fn bench_table4(c: &mut Criterion) {
    c.bench_function("table4_dl_speedup", |b| b.iter(me_core::experiments::table4));
}

fn bench_fig3(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig3_hpc_utilization");
    g.sample_size(10);
    g.bench_function("profile_all_77", |b| b.iter(|| me_workloads::hpc::profile_all(1)));
    g.finish();
}

fn bench_klog(c: &mut Criterion) {
    let mut g = c.benchmark_group("klog_attribution");
    g.sample_size(10);
    let corpus = me_survey::klog::generate_k_corpus_with(
        me_survey::klog::KCorpusShape {
            jobs: 50_000,
            total_node_hours: 543.0e6,
            symbol_coverage: 0.96,
        },
        1,
    );
    g.bench_function("attribute_50k_jobs", |b| {
        b.iter(|| me_survey::klog::attribute_gemm(&corpus))
    });
    g.finish();
}

fn bench_fig4(c: &mut Criterion) {
    c.bench_function("fig4_node_hours", |b| b.iter(me_core::experiments::fig4));
    let k = me_model::MachineMix::k_computer_default();
    let speedups: Vec<f64> = (1..200).map(|i| 1.0 + i as f64 * 0.25).collect();
    c.bench_function("fig4_speedup_sweep", |b| b.iter(|| k.sweep(&speedups)));
}

fn bench_table8(c: &mut Criterion) {
    let mut g = c.benchmark_group("table8_ozaki");
    g.sample_size(10);
    g.bench_function("full_table", |b| b.iter(me_ozaki::table8_rows));
    g.finish();
}

fn bench_dark_silicon(c: &mut Criterion) {
    c.bench_function("dark_silicon_governor", |b| b.iter(me_core::experiments::dark_silicon));
}

criterion_group!(
    artifacts,
    bench_table1,
    bench_table2,
    bench_fig1,
    bench_table3,
    bench_fig2,
    bench_table4,
    bench_fig3,
    bench_klog,
    bench_fig4,
    bench_table8,
    bench_dark_silicon
);
criterion_main!(artifacts);
