//! Batched-vs-unbatched serving throughput on a Table V-shaped request
//! mix.
//!
//! The workload is the serving-side version of the paper's utilization
//! argument: a stream of *small* GEMM requests (single- to few-row `A`
//! operands against per-app shared `B` weights) drawn from the nine
//! GEMM-bearing Table V proxy applications, weighted by their profiled
//! GEMM fractions. Individually these requests are far too small to fill
//! the packed kernel's tiles or amortize its B-pack; the question this
//! bench answers is how much of that loss the `me-serve` coalescing
//! layer buys back.
//!
//! Both arms run the *same* scheduler; the unbatched arm simply pins
//! `batch_max = 1` (coalescing off), so the comparison isolates the
//! batching layer itself rather than scheduler-vs-no-scheduler overhead.
//! The acceptance gate asserts batched throughput ≥ 2x unbatched, and —
//! first — that every batched result is bitwise identical to the serial
//! `gemm_tiled_with` reference, so the speedup is provably not bought
//! with numerics.
//!
//! `ME_BENCH_SMOKE=1` shrinks the trace for the CI gate.

use std::sync::Arc;
use std::time::Instant;

use me_bench::bench_matrix;
use me_linalg::{gemm_tiled_with, KernelVariant, Mat};
use me_serve::{Job, Outcome, Scheduler, ServeConfig, StatsSnapshot, Ticket};

/// One request of the trace: which app it models, its `A` operand, and
/// the index of the shared `B` it multiplies against.
struct TraceReq {
    app: &'static str,
    a: Arc<Mat<f64>>,
    bucket: usize,
}

/// Characteristic per-app panel sizes (k = n) for the request mix: each
/// proxy app multiplies against its own square "weights" operand, so the
/// trace carries nine distinct buckets of nine distinct shapes.
const APP_SHAPES: [usize; 9] = [96, 64, 80, 128, 112, 56, 72, 88, 104];

/// Build the weighted small-shape request trace from the Table V mix.
fn build_trace(total: usize, seed: u64) -> (Vec<TraceReq>, Vec<Arc<Mat<f64>>>) {
    let apps: Vec<(&'static str, f64)> = me_workloads::hpc::all_benchmarks()
        .iter()
        .filter(|b| b.gemm_weight() > 0.0)
        .map(|b| (b.name, b.gemm_weight()))
        .collect();
    assert!(!apps.is_empty(), "Table V must contribute GEMM-bearing apps");
    let weight_sum: f64 = apps.iter().map(|(_, w)| w).sum();
    let weights: Vec<Arc<Mat<f64>>> = (0..apps.len())
        .map(|i| {
            let k = APP_SHAPES[i % APP_SHAPES.len()];
            Arc::new(bench_matrix(k, k, 1000 + i as u64))
        })
        .collect();
    let mut rng = me_numerics::Rng64::seed_from_u64(seed);
    let trace = (0..total)
        .map(|i| {
            let mut pick = rng.range_f64(0.0, weight_sum);
            let mut bucket = 0;
            for (j, (_, w)) in apps.iter().enumerate() {
                bucket = j;
                pick -= w;
                if pick <= 0.0 {
                    break;
                }
            }
            let m = 1 + rng.range_usize(0, 2); // 1..=2 rows: inference-sized
            let k = weights[bucket].rows();
            TraceReq { app: apps[bucket].0, a: Arc::new(bench_matrix(m, k, 2000 + i as u64)), bucket }
        })
        .collect();
    (trace, weights)
}

/// Push the whole trace through a scheduler and drain it; returns the
/// wall time, the per-request outputs (trace order), and the counters.
fn run_arm(
    trace: &[TraceReq],
    weights: &[Arc<Mat<f64>>],
    batch_max: usize,
) -> (f64, Vec<Mat<f64>>, StatsSnapshot) {
    let sched = Scheduler::new(ServeConfig {
        shards: 1,
        shard_threads: 1,
        queue_capacity: trace.len() + 1,
        batch_max,
        ..Default::default()
    });
    let t0 = Instant::now();
    let tickets: Vec<Ticket> = trace
        .iter()
        .map(|r| {
            sched
                .submit(Job::gemm(
                    KernelVariant::Portable,
                    1.0,
                    Arc::clone(&r.a),
                    Arc::clone(&weights[r.bucket]),
                ))
                .expect("capacity covers the whole trace")
        })
        .collect();
    let outputs: Vec<Mat<f64>> = tickets
        .into_iter()
        .map(|t| match t.wait().outcome {
            Outcome::Ok(c) => c,
            other => panic!("request did not complete: {other:?}"),
        })
        .collect();
    let elapsed = t0.elapsed().as_secs_f64();
    let stats = sched.shutdown();
    assert!(stats.is_conserved(), "conservation broken: {stats:?}");
    (elapsed, outputs, stats)
}

fn main() {
    let smoke = std::env::var_os("ME_BENCH_SMOKE").is_some();
    let (total, reps) = if smoke { (400, 1) } else { (4000, 2) };
    let (trace, weights) = build_trace(total, 42);
    let mut per_app: Vec<(&str, usize)> = Vec::new();
    for r in &trace {
        match per_app.iter_mut().find(|(n, _)| *n == r.app) {
            Some((_, c)) => *c += 1,
            None => per_app.push((r.app, 1)),
        }
    }
    per_app.sort_by(|x, y| y.1.cmp(&x.1));
    let mix: Vec<String> = per_app.iter().map(|(n, c)| format!("{n}:{c}")).collect();
    println!(
        "serve_throughput: {total} requests, m in 1..=2, per-app k=n in 56..=128, Table V mix [{}]",
        mix.join(" ")
    );

    // Serial reference: each request alone through the tiled kernel.
    let t_ref = Instant::now();
    let refs: Vec<Mat<f64>> = trace
        .iter()
        .map(|r| {
            let mut c = Mat::zeros(r.a.rows(), weights[r.bucket].cols());
            gemm_tiled_with(KernelVariant::Portable, 1.0, &r.a, &weights[r.bucket], 0.0, &mut c);
            c
        })
        .collect();
    println!("  serial reference loop: {:.3} s", t_ref.elapsed().as_secs_f64());

    let mut best_unbatched = f64::INFINITY;
    let mut best_batched = f64::INFINITY;
    let mut batched_stats = None;
    for _ in 0..reps {
        let (t_u, out_u, _) = run_arm(&trace, &weights, 1);
        let (t_b, out_b, stats_b) = run_arm(&trace, &weights, 64);
        for (i, (got, want)) in out_b.iter().zip(&refs).enumerate() {
            assert!(
                got.as_slice() == want.as_slice(),
                "batched request {i} diverged bitwise from the serial reference"
            );
        }
        for (i, (got, want)) in out_u.iter().zip(&refs).enumerate() {
            assert!(
                got.as_slice() == want.as_slice(),
                "unbatched request {i} diverged bitwise from the serial reference"
            );
        }
        best_unbatched = best_unbatched.min(t_u);
        best_batched = best_batched.min(t_b);
        batched_stats = Some(stats_b);
    }
    let speedup = best_unbatched / best_batched;
    println!(
        "  unbatched (batch_max=1):  {:>8.1} req/s  ({:.3} s)",
        total as f64 / best_unbatched,
        best_unbatched
    );
    println!(
        "  batched  (batch_max=64):  {:>8.1} req/s  ({:.3} s)  speedup={speedup:.2}x  bitwise=ok",
        total as f64 / best_batched,
        best_batched
    );
    if let Some(s) = batched_stats {
        println!(
            "  batched arm: {} batches / {} requests (max batch {}, {} stacked rows)",
            s.batches, s.batched_requests, s.max_batch, s.stacked_rows
        );
    }
    assert!(
        speedup >= 2.0,
        "acceptance gate: batched serving must be >= 2x unbatched, measured {speedup:.2}x"
    );
}
