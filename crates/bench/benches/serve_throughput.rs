//! Batched-vs-unbatched serving throughput on a Table V-shaped request
//! mix, plus the prepacked-B weight-cache A/B.
//!
//! The workload is the serving-side version of the paper's utilization
//! argument: a stream of *small* GEMM requests (single- to few-row `A`
//! operands against per-app shared `B` weights) drawn from the nine
//! GEMM-bearing Table V proxy applications, weighted by their profiled
//! GEMM fractions. Individually these requests are far too small to fill
//! the packed kernel's tiles or amortize its B-pack; the question this
//! bench answers is how much of that loss the `me-serve` coalescing
//! layer buys back — and, since Issue 7, how much more the weight cache
//! recovers by packing each long-lived `B` exactly once instead of once
//! per batch.
//!
//! All arms run the *same* scheduler code; the unbatched arm pins
//! `batch_max = 1` (coalescing off) and the no-cache arm pins
//! `weight_cache_bytes = 0`, so each comparison isolates one layer. The
//! cached and no-cache arms replay the trace for several passes through
//! one persistent scheduler — steady-state inference traffic — so the
//! cache's one-time pack cost amortizes the way it would in a real
//! service. Acceptance gates, in order:
//!
//! 1. every result from every arm is bitwise identical to the serial
//!    `gemm_tiled_with` reference (the speedups are not bought with
//!    numerics),
//! 2. batched throughput ≥ 2x unbatched (the PR 5 gate, unchanged),
//! 3. the B-cache arm is at least as fast as the no-cache arm,
//! 4. the B-cache arm's steady-state hit rate is ≥ 90 %.
//!
//! `ME_BENCH_SMOKE=1` shrinks the trace for the CI gate (and raises the
//! pass count so the hit-rate gate still has a steady state to measure).

use std::sync::Arc;
use std::time::Instant;

use me_bench::bench_matrix;
use me_linalg::{gemm_tiled_with, KernelVariant, Mat};
use me_serve::{Job, Outcome, Scheduler, ServeConfig, StatsSnapshot, Ticket};

/// One request of the trace: which app it models, its `A` operand, and
/// the index of the shared `B` it multiplies against.
struct TraceReq {
    app: &'static str,
    a: Arc<Mat<f64>>,
    bucket: usize,
}

/// Characteristic per-app panel sizes (k = n) for the request mix: each
/// proxy app multiplies against its own square "weights" operand, so the
/// trace carries nine distinct buckets of nine distinct shapes.
const APP_SHAPES: [usize; 9] = [96, 64, 80, 128, 112, 56, 72, 88, 104];

/// Build the weighted small-shape request trace from the Table V mix.
fn build_trace(total: usize, seed: u64) -> (Vec<TraceReq>, Vec<Arc<Mat<f64>>>) {
    let apps: Vec<(&'static str, f64)> = me_workloads::hpc::all_benchmarks()
        .iter()
        .filter(|b| b.gemm_weight() > 0.0)
        .map(|b| (b.name, b.gemm_weight()))
        .collect();
    assert!(!apps.is_empty(), "Table V must contribute GEMM-bearing apps");
    let weight_sum: f64 = apps.iter().map(|(_, w)| w).sum();
    let weights: Vec<Arc<Mat<f64>>> = (0..apps.len())
        .map(|i| {
            let k = APP_SHAPES[i % APP_SHAPES.len()];
            Arc::new(bench_matrix(k, k, 1000 + i as u64))
        })
        .collect();
    let mut rng = me_numerics::Rng64::seed_from_u64(seed);
    let trace = (0..total)
        .map(|i| {
            let mut pick = rng.range_f64(0.0, weight_sum);
            let mut bucket = 0;
            for (j, (_, w)) in apps.iter().enumerate() {
                bucket = j;
                pick -= w;
                if pick <= 0.0 {
                    break;
                }
            }
            let m = 1 + rng.range_usize(0, 2); // 1..=2 rows: inference-sized
            let k = weights[bucket].rows();
            TraceReq { app: apps[bucket].0, a: Arc::new(bench_matrix(m, k, 2000 + i as u64)), bucket }
        })
        .collect();
    (trace, weights)
}

/// Push the trace through one persistent scheduler `passes` times
/// (submit all, drain all, repeat); returns the total wall time, the
/// final pass's per-request outputs (trace order), and the counters.
fn run_arm(
    trace: &[TraceReq],
    weights: &[Arc<Mat<f64>>],
    variant: KernelVariant,
    batch_max: usize,
    cache_bytes: usize,
    passes: usize,
) -> (f64, Vec<Mat<f64>>, StatsSnapshot) {
    let sched = Scheduler::new(ServeConfig {
        shards: 1,
        shard_threads: 1,
        queue_capacity: trace.len() + 1,
        batch_max,
        weight_cache_bytes: cache_bytes,
        ..Default::default()
    });
    let t0 = Instant::now();
    let mut outputs = Vec::new();
    for _ in 0..passes {
        let tickets: Vec<Ticket> = trace
            .iter()
            .map(|r| {
                sched
                    .submit(Job::gemm(
                        variant,
                        1.0,
                        Arc::clone(&r.a),
                        Arc::clone(&weights[r.bucket]),
                    ))
                    .expect("capacity covers the whole trace")
            })
            .collect();
        outputs = tickets
            .into_iter()
            .map(|t| match t.wait().outcome {
                Outcome::Ok(c) => c,
                other => panic!("request did not complete: {other:?}"),
            })
            .collect();
    }
    let elapsed = t0.elapsed().as_secs_f64();
    let stats = sched.shutdown();
    assert!(stats.is_conserved(), "conservation broken: {stats:?}");
    (elapsed, outputs, stats)
}

fn assert_bitwise(arm: &str, got: &[Mat<f64>], refs: &[Mat<f64>]) {
    for (i, (g, want)) in got.iter().zip(refs).enumerate() {
        assert!(
            g.as_slice() == want.as_slice(),
            "{arm} request {i} diverged bitwise from the serial reference"
        );
    }
}

fn main() {
    let smoke = std::env::var_os("ME_BENCH_SMOKE").is_some();
    // Smoke shrinks the trace but replays more passes: the hit-rate gate
    // needs enough steady-state lookups to drown the cold-pass misses.
    let (total, reps, passes) = if smoke { (400, 3, 10) } else { (4000, 2, 3) };
    // The cache A/B runs at a small coalescing window (one B-pack per
    // ~12 stacked rows — the regime the cache is for) and on the fastest
    // runnable kernel: on the slow scalar/portable kernels compute
    // drowns the pack entirely (~1 % of a batch), so the A/B would
    // measure noise. The batching A/B below keeps the original
    // Portable / batch_max = 64 arms (the PR 5 gate, unchanged).
    let cache_batch = 8;
    let fast = *me_linalg::available_variants().last().expect("scalar always runs");
    let (trace, weights) = build_trace(total, 42);
    let mut per_app: Vec<(&str, usize)> = Vec::new();
    for r in &trace {
        match per_app.iter_mut().find(|(n, _)| *n == r.app) {
            Some((_, c)) => *c += 1,
            None => per_app.push((r.app, 1)),
        }
    }
    per_app.sort_by(|x, y| y.1.cmp(&x.1));
    let mix: Vec<String> = per_app.iter().map(|(n, c)| format!("{n}:{c}")).collect();
    println!(
        "serve_throughput: {total} requests x {passes} passes, m in 1..=2, per-app k=n in 56..=128, Table V mix [{}]",
        mix.join(" ")
    );

    // Serial references: each request alone through the tiled kernel,
    // once per kernel variant the arms run on.
    let serial_refs = |variant: KernelVariant| -> Vec<Mat<f64>> {
        trace
            .iter()
            .map(|r| {
                let mut c = Mat::zeros(r.a.rows(), weights[r.bucket].cols());
                gemm_tiled_with(variant, 1.0, &r.a, &weights[r.bucket], 0.0, &mut c);
                c
            })
            .collect()
    };
    let t_ref = Instant::now();
    let refs = serial_refs(KernelVariant::Portable);
    let refs_fast = serial_refs(fast);
    println!(
        "  serial reference loops (Portable + {}): {:.3} s",
        fast.name(),
        t_ref.elapsed().as_secs_f64()
    );

    let mut best_unbatched = f64::INFINITY;
    let mut best_batched = f64::INFINITY;
    let mut best_nocache = f64::INFINITY;
    let mut best_cached = f64::INFINITY;
    let mut cached_stats = None;
    for _ in 0..reps {
        let (t_u, out_u, _) = run_arm(&trace, &weights, KernelVariant::Portable, 1, 0, 1);
        let (t_b, out_b, _) = run_arm(&trace, &weights, KernelVariant::Portable, 64, 0, 1);
        let (t_n, out_n, _) = run_arm(&trace, &weights, fast, cache_batch, 0, passes);
        let (t_c, out_c, stats_c) =
            run_arm(&trace, &weights, fast, cache_batch, 64 << 20, passes);
        assert_bitwise("unbatched", &out_u, &refs);
        assert_bitwise("batched", &out_b, &refs);
        assert_bitwise("batched no-cache", &out_n, &refs_fast);
        assert_bitwise("batched B-cache", &out_c, &refs_fast);
        best_unbatched = best_unbatched.min(t_u);
        best_batched = best_batched.min(t_b);
        best_nocache = best_nocache.min(t_n / passes as f64);
        best_cached = best_cached.min(t_c / passes as f64);
        cached_stats = Some(stats_c);
    }
    let speedup_batch = best_unbatched / best_batched;
    let speedup_cache = best_nocache / best_cached;
    println!(
        "  unbatched (batch_max=1):       {:>8.1} req/s  ({:.3} s/pass)",
        total as f64 / best_unbatched,
        best_unbatched
    );
    println!(
        "  batched  (batch_max=64):       {:>8.1} req/s  ({:.3} s/pass)  speedup={speedup_batch:.2}x  bitwise=ok",
        total as f64 / best_batched,
        best_batched
    );
    println!(
        "  {} batch={cache_batch}, no cache:  {:>8.1} req/s  ({:.3} s/pass)",
        fast.name(),
        total as f64 / best_nocache,
        best_nocache
    );
    println!(
        "  {} batch={cache_batch}, B-cache:   {:>8.1} req/s  ({:.3} s/pass)  vs no-cache={speedup_cache:.2}x  bitwise=ok",
        fast.name(),
        total as f64 / best_cached,
        best_cached
    );
    let stats = cached_stats.expect("at least one rep ran");
    let lookups = stats.cache_hits + stats.cache_misses;
    let hit_rate = stats.cache_hits as f64 / lookups.max(1) as f64;
    println!(
        "  B-cache arm: {} batches, {} lookups, {} hits ({:.1}% hit rate), {} evictions, {:.1} MiB of repacks saved",
        stats.batches,
        lookups,
        stats.cache_hits,
        100.0 * hit_rate,
        stats.cache_evictions,
        stats.cache_pack_bytes_saved as f64 / (1024.0 * 1024.0)
    );
    assert!(
        speedup_batch >= 2.0,
        "acceptance gate: batched serving must be >= 2x unbatched, measured {speedup_batch:.2}x"
    );
    assert!(
        speedup_cache >= 1.0,
        "acceptance gate: the B-cache arm must not lose to the no-cache arm, measured {speedup_cache:.2}x"
    );
    assert!(
        hit_rate >= 0.9,
        "acceptance gate: steady-state replay must hit >= 90%, measured {:.1}% over {lookups} lookups",
        100.0 * hit_rate
    );
}
