//! Batched-vs-unbatched serving throughput on a Table V-shaped request
//! mix, plus the prepacked-B weight-cache A/B.
//!
//! The workload is the serving-side version of the paper's utilization
//! argument: a stream of *small* GEMM requests (single- to few-row `A`
//! operands against per-app shared `B` weights) drawn from the nine
//! GEMM-bearing Table V proxy applications, weighted by their profiled
//! GEMM fractions. Individually these requests are far too small to fill
//! the packed kernel's tiles or amortize its B-pack; the question this
//! bench answers is how much of that loss the `me-serve` coalescing
//! layer buys back — and, since Issue 7, how much more the weight cache
//! recovers by packing each long-lived `B` exactly once instead of once
//! per batch.
//!
//! All arms run the *same* scheduler code; the unbatched arm pins
//! `batch_max = 1` (coalescing off) and the no-cache arm pins
//! `weight_cache_bytes = 0`, so each comparison isolates one layer. The
//! cached and no-cache arms replay the trace for several passes through
//! one persistent scheduler — steady-state inference traffic — so the
//! cache's one-time pack cost amortizes the way it would in a real
//! service. Acceptance gates, in order:
//!
//! 1. every result from every arm is bitwise identical to the serial
//!    `gemm_tiled_with` reference (the speedups are not bought with
//!    numerics),
//! 2. batched throughput ≥ 2x unbatched (the PR 5 gate, unchanged),
//! 3. the B-cache arm is at least as fast as the no-cache arm,
//! 4. the B-cache arm's steady-state hit rate is ≥ 90 %.
//!
//! `ME_BENCH_SMOKE=1` shrinks the trace for the CI gate (and raises the
//! pass count so the hit-rate gate still has a steady state to measure).

use std::fmt::Write as _;
use std::sync::Arc;
use std::time::{Duration, Instant};

use me_bench::bench_matrix;
use me_linalg::{gemm_tiled_with, KernelVariant, Mat};
use me_serve::{
    Job, Outcome, QueueKind, Scheduler, ServeConfig, StatsSnapshot, SubmitError, TenantId, Ticket,
};

/// One request of the trace: which app it models, its `A` operand, and
/// the index of the shared `B` it multiplies against.
struct TraceReq {
    app: &'static str,
    a: Arc<Mat<f64>>,
    bucket: usize,
}

/// Characteristic per-app panel sizes (k = n) for the request mix: each
/// proxy app multiplies against its own square "weights" operand, so the
/// trace carries nine distinct buckets of nine distinct shapes.
const APP_SHAPES: [usize; 9] = [96, 64, 80, 128, 112, 56, 72, 88, 104];

/// Build the weighted small-shape request trace from the Table V mix.
fn build_trace(total: usize, seed: u64) -> (Vec<TraceReq>, Vec<Arc<Mat<f64>>>) {
    let apps: Vec<(&'static str, f64)> = me_workloads::hpc::all_benchmarks()
        .iter()
        .filter(|b| b.gemm_weight() > 0.0)
        .map(|b| (b.name, b.gemm_weight()))
        .collect();
    assert!(!apps.is_empty(), "Table V must contribute GEMM-bearing apps");
    let weight_sum: f64 = apps.iter().map(|(_, w)| w).sum();
    let weights: Vec<Arc<Mat<f64>>> = (0..apps.len())
        .map(|i| {
            let k = APP_SHAPES[i % APP_SHAPES.len()];
            Arc::new(bench_matrix(k, k, 1000 + i as u64))
        })
        .collect();
    let mut rng = me_numerics::Rng64::seed_from_u64(seed);
    let trace = (0..total)
        .map(|i| {
            let mut pick = rng.range_f64(0.0, weight_sum);
            let mut bucket = 0;
            for (j, (_, w)) in apps.iter().enumerate() {
                bucket = j;
                pick -= w;
                if pick <= 0.0 {
                    break;
                }
            }
            let m = 1 + rng.range_usize(0, 2); // 1..=2 rows: inference-sized
            let k = weights[bucket].rows();
            TraceReq { app: apps[bucket].0, a: Arc::new(bench_matrix(m, k, 2000 + i as u64)), bucket }
        })
        .collect();
    (trace, weights)
}

/// Push the trace through one persistent scheduler `passes` times
/// (submit all, drain all, repeat); returns the total wall time, the
/// final pass's per-request outputs (trace order), and the counters.
fn run_arm(
    trace: &[TraceReq],
    weights: &[Arc<Mat<f64>>],
    variant: KernelVariant,
    batch_max: usize,
    cache_bytes: usize,
    passes: usize,
) -> (f64, Vec<Mat<f64>>, StatsSnapshot) {
    let sched = Scheduler::new(ServeConfig {
        shards: 1,
        shard_threads: 1,
        queue_capacity: trace.len() + 1,
        batch_max,
        weight_cache_bytes: cache_bytes,
        ..Default::default()
    });
    let t0 = Instant::now();
    let mut outputs = Vec::new();
    for _ in 0..passes {
        let tickets: Vec<Ticket> = trace
            .iter()
            .map(|r| {
                sched
                    .submit(Job::gemm(
                        variant,
                        1.0,
                        Arc::clone(&r.a),
                        Arc::clone(&weights[r.bucket]),
                    ))
                    .expect("capacity covers the whole trace")
            })
            .collect();
        outputs = tickets
            .into_iter()
            .map(|t| match t.wait().outcome {
                Outcome::Ok(c) => c,
                other => panic!("request did not complete: {other:?}"),
            })
            .collect();
    }
    let elapsed = t0.elapsed().as_secs_f64();
    let stats = sched.shutdown();
    assert!(stats.is_conserved(), "conservation broken: {stats:?}");
    (elapsed, outputs, stats)
}

fn assert_bitwise(arm: &str, got: &[Mat<f64>], refs: &[Mat<f64>]) {
    for (i, (g, want)) in got.iter().zip(refs).enumerate() {
        assert!(
            g.as_slice() == want.as_slice(),
            "{arm} request {i} diverged bitwise from the serial reference"
        );
    }
}

fn main() {
    let smoke = std::env::var_os("ME_BENCH_SMOKE").is_some();
    // Smoke shrinks the trace but replays more passes: the hit-rate gate
    // needs enough steady-state lookups to drown the cold-pass misses.
    let (total, reps, passes) = if smoke { (400, 3, 10) } else { (4000, 2, 3) };
    // The cache A/B runs at a small coalescing window (one B-pack per
    // ~12 stacked rows — the regime the cache is for) and on the fastest
    // runnable kernel: on the slow scalar/portable kernels compute
    // drowns the pack entirely (~1 % of a batch), so the A/B would
    // measure noise. The batching A/B below keeps the original
    // Portable / batch_max = 64 arms (the PR 5 gate, unchanged).
    let cache_batch = 8;
    let fast = *me_linalg::available_variants().last().expect("scalar always runs");
    let (trace, weights) = build_trace(total, 42);
    let mut per_app: Vec<(&str, usize)> = Vec::new();
    for r in &trace {
        match per_app.iter_mut().find(|(n, _)| *n == r.app) {
            Some((_, c)) => *c += 1,
            None => per_app.push((r.app, 1)),
        }
    }
    per_app.sort_by(|x, y| y.1.cmp(&x.1));
    let mix: Vec<String> = per_app.iter().map(|(n, c)| format!("{n}:{c}")).collect();
    println!(
        "serve_throughput: {total} requests x {passes} passes, m in 1..=2, per-app k=n in 56..=128, Table V mix [{}]",
        mix.join(" ")
    );

    // Serial references: each request alone through the tiled kernel,
    // once per kernel variant the arms run on.
    let serial_refs = |variant: KernelVariant| -> Vec<Mat<f64>> {
        trace
            .iter()
            .map(|r| {
                let mut c = Mat::zeros(r.a.rows(), weights[r.bucket].cols());
                gemm_tiled_with(variant, 1.0, &r.a, &weights[r.bucket], 0.0, &mut c);
                c
            })
            .collect()
    };
    let t_ref = Instant::now();
    let refs = serial_refs(KernelVariant::Portable);
    let refs_fast = serial_refs(fast);
    println!(
        "  serial reference loops (Portable + {}): {:.3} s",
        fast.name(),
        t_ref.elapsed().as_secs_f64()
    );

    let mut best_unbatched = f64::INFINITY;
    let mut best_batched = f64::INFINITY;
    let mut best_nocache = f64::INFINITY;
    let mut best_cached = f64::INFINITY;
    let mut cached_stats = None;
    for _ in 0..reps {
        let (t_u, out_u, _) = run_arm(&trace, &weights, KernelVariant::Portable, 1, 0, 1);
        let (t_b, out_b, _) = run_arm(&trace, &weights, KernelVariant::Portable, 64, 0, 1);
        let (t_n, out_n, _) = run_arm(&trace, &weights, fast, cache_batch, 0, passes);
        let (t_c, out_c, stats_c) =
            run_arm(&trace, &weights, fast, cache_batch, 64 << 20, passes);
        assert_bitwise("unbatched", &out_u, &refs);
        assert_bitwise("batched", &out_b, &refs);
        assert_bitwise("batched no-cache", &out_n, &refs_fast);
        assert_bitwise("batched B-cache", &out_c, &refs_fast);
        best_unbatched = best_unbatched.min(t_u);
        best_batched = best_batched.min(t_b);
        best_nocache = best_nocache.min(t_n / passes as f64);
        best_cached = best_cached.min(t_c / passes as f64);
        cached_stats = Some(stats_c);
    }
    let speedup_batch = best_unbatched / best_batched;
    let speedup_cache = best_nocache / best_cached;
    println!(
        "  unbatched (batch_max=1):       {:>8.1} req/s  ({:.3} s/pass)",
        total as f64 / best_unbatched,
        best_unbatched
    );
    println!(
        "  batched  (batch_max=64):       {:>8.1} req/s  ({:.3} s/pass)  speedup={speedup_batch:.2}x  bitwise=ok",
        total as f64 / best_batched,
        best_batched
    );
    println!(
        "  {} batch={cache_batch}, no cache:  {:>8.1} req/s  ({:.3} s/pass)",
        fast.name(),
        total as f64 / best_nocache,
        best_nocache
    );
    println!(
        "  {} batch={cache_batch}, B-cache:   {:>8.1} req/s  ({:.3} s/pass)  vs no-cache={speedup_cache:.2}x  bitwise=ok",
        fast.name(),
        total as f64 / best_cached,
        best_cached
    );
    let stats = cached_stats.expect("at least one rep ran");
    let lookups = stats.cache_hits + stats.cache_misses;
    let hit_rate = stats.cache_hits as f64 / lookups.max(1) as f64;
    println!(
        "  B-cache arm: {} batches, {} lookups, {} hits ({:.1}% hit rate), {} evictions, {:.1} MiB of repacks saved",
        stats.batches,
        lookups,
        stats.cache_hits,
        100.0 * hit_rate,
        stats.cache_evictions,
        stats.cache_pack_bytes_saved as f64 / (1024.0 * 1024.0)
    );
    assert!(
        speedup_batch >= 2.0,
        "acceptance gate: batched serving must be >= 2x unbatched, measured {speedup_batch:.2}x"
    );
    assert!(
        speedup_cache >= 1.0,
        "acceptance gate: the B-cache arm must not lose to the no-cache arm, measured {speedup_cache:.2}x"
    );
    assert!(
        hit_rate >= 0.9,
        "acceptance gate: steady-state replay must hit >= 90%, measured {:.1}% over {lookups} lookups",
        100.0 * hit_rate
    );

    run_replay(smoke, fast);
}

// ---------------------------------------------------------------------
// Million-request multi-tenant open-loop replay (Issue 9 tentpole gate).
//
// Five model-shaped tenants (attention + MLP GEMM shapes from the
// aiter model-GEMM runner, scaled 1/64 at TP = 8, skinny-m dominant)
// drive a Poisson-ish arrival curve against the ring-arm scheduler.
// Three in-bench gates:
//
//   1. throughput — the lock-free ring arm sustains at least the mutex
//      arm's closed-loop rate (best-of-CAL_REPS calibration bursts);
//   2. latency SLO — open-loop p99 at 60 % of calibrated capacity stays
//      under max(250 ms, 3 × closed-loop p99), overridable via
//      ME_SERVE_SLO_MS;
//   3. conservation — enqueued == ok + timed_out + shed + failed,
//      globally and per tenant, with upstream (QueueFull) rejections
//      accounted separately.
//
// The replay writes its report to artifacts/serve_replay.txt before
// asserting the gates, so a failed gate still leaves the evidence.
// ---------------------------------------------------------------------

/// One tenant: a serving model whose GEMM mix this tenant replays.
/// Shapes derive from (attention_head, kv_head, head_dim,
/// intermediate_size) at TP = 8, all feature dimensions scaled 1/64.
struct ModelTenant {
    name: &'static str,
    heads: usize,
    kv_heads: usize,
    head_dim: usize,
    intermediate: usize,
    /// Weighted-fair admission share for this tenant.
    weight: u64,
}

const MODELS: [ModelTenant; 5] = [
    ModelTenant { name: "Qwen3-32B", heads: 64, kv_heads: 8, head_dim: 80, intermediate: 25600, weight: 4 },
    ModelTenant { name: "Qwen3-30B", heads: 16, kv_heads: 16, head_dim: 128, intermediate: 6144, weight: 3 },
    ModelTenant { name: "Qwen3-235B", heads: 32, kv_heads: 32, head_dim: 128, intermediate: 12288, weight: 2 },
    ModelTenant { name: "Llama3-70B", heads: 64, kv_heads: 8, head_dim: 128, intermediate: 28672, weight: 2 },
    ModelTenant { name: "Llama3-405B", heads: 128, kv_heads: 8, head_dim: 128, intermediate: 53248, weight: 1 },
];

/// Feature-dimension scale: hidden sizes shrink 1/64 so the replay's
/// GEMMs are service-sized on this container while keeping the models'
/// relative proportions.
const SCALE: usize = 64;
const TP: usize = 8;

impl ModelTenant {
    /// (k, n) for the two GEMM families the tenant replays: the fused
    /// QKV attention projection and the MLP up-projection, both sharded
    /// over TP ranks and scaled by [`SCALE`].
    fn shapes(&self) -> [(usize, usize); 2] {
        let hidden = self.heads * self.head_dim;
        let k = (hidden / SCALE).max(8);
        let qkv = (self.heads + 2 * self.kv_heads) * self.head_dim;
        let n_attn = (qkv / TP / (SCALE / TP)).max(8);
        let n_mlp = (self.intermediate / TP / (SCALE / TP)).max(8);
        [(k, n_attn), (k, n_mlp)]
    }
}

/// The skinny-m mix that dominates serving traffic (decode + small
/// prefill), per the aiter runner's M sweep lower end.
const SKINNY_M: [usize; 4] = [1, 2, 4, 8];

/// The full M sweep on the canonical (k = n = 128) shape: each power of
/// two appears exactly once per replay, spread evenly through the trace.
fn sweep_ms(cap: usize) -> Vec<usize> {
    (0..)
        .map(|i| 1usize << i)
        .take_while(|&m| m <= cap)
        .collect()
}

const CANONICAL_K: usize = 128;
const CANONICAL_N: usize = 128;

/// Everything fixed about one replay request, derivable from its index:
/// tenant, shape, and the seed for its `A` operand. `A` itself is
/// generated at submit time (a million prebuilt operands would not fit).
#[derive(Clone, Copy)]
struct ReqSpec {
    tenant: u32,
    /// Index into the prebuilt weight set; `usize::MAX` = canonical sweep.
    bucket: usize,
    m: usize,
    k: usize,
}

/// Deterministic request mix: tenant by weighted share of traffic,
/// shape uniformly between the tenant's two families, skinny m; every
/// `total / sweep_len`-th request is the next canonical M-sweep point.
fn replay_spec(i: usize, total: usize, sweep: &[usize], rng: &mut me_numerics::Rng64) -> ReqSpec {
    let stride = (total / sweep.len()).max(1);
    if i % stride == 0 && i / stride < sweep.len() {
        return ReqSpec {
            tenant: (i / stride % MODELS.len()) as u32,
            bucket: usize::MAX,
            m: sweep[i / stride],
            k: CANONICAL_K,
        };
    }
    let tenant = rng.range_usize(0, MODELS.len());
    let fam = rng.range_usize(0, 2);
    let m = SKINNY_M[rng.range_usize(0, SKINNY_M.len())];
    let (k, _n) = MODELS[tenant].shapes()[fam];
    ReqSpec { tenant: tenant as u32, bucket: tenant * 2 + fam, m, k }
}

/// Build the shared weight (B) operands: two per tenant plus the
/// canonical sweep shape at the end.
fn replay_weights() -> Vec<Arc<Mat<f64>>> {
    let mut weights = Vec::new();
    for (t, model) in MODELS.iter().enumerate() {
        for (f, (k, n)) in model.shapes().into_iter().enumerate() {
            weights.push(Arc::new(bench_matrix(k, n, 9_000 + (t * 2 + f) as u64)));
        }
    }
    weights.push(Arc::new(bench_matrix(CANONICAL_K, CANONICAL_N, 9_500)));
    weights
}

fn replay_job(
    spec: ReqSpec,
    weights: &[Arc<Mat<f64>>],
    variant: KernelVariant,
    seed: u64,
) -> Job {
    let bucket = if spec.bucket == usize::MAX { weights.len() - 1 } else { spec.bucket };
    let a = Arc::new(bench_matrix(spec.m, spec.k, seed));
    Job::gemm(variant, 1.0, a, Arc::clone(&weights[bucket]))
        .with_tenant(TenantId(spec.tenant))
}

fn replay_config(kind: QueueKind, capacity: usize) -> ServeConfig {
    ServeConfig {
        shards: 2,
        shard_threads: 2,
        queue_capacity: capacity,
        batch_max: 32,
        weight_cache_bytes: 64 << 20,
        queue: Some(kind),
        tenant_weights: MODELS.iter().map(|m| m.weight).collect(),
        ..Default::default()
    }
}

/// Closed-loop calibration burst: `count` requests submitted flat-out
/// through one arm, drained in submission order. Returns (req/s,
/// closed-loop p99 ns).
fn calibrate(
    kind: QueueKind,
    count: usize,
    sweep: &[usize],
    weights: &[Arc<Mat<f64>>],
    variant: KernelVariant,
    seed: u64,
) -> (f64, u64) {
    let sched = Scheduler::new(replay_config(kind, 4096));
    let mut rng = me_numerics::Rng64::seed_from_u64(seed);
    let t0 = Instant::now();
    let mut pending: std::collections::VecDeque<Ticket> = std::collections::VecDeque::new();
    for i in 0..count {
        let spec = replay_spec(i, count, sweep, &mut rng);
        let job = replay_job(spec, weights, variant, seed ^ (i as u64) << 1);
        // Closed-ish loop: cap outstanding work at the queue depth so
        // calibration measures service rate, not queue-build rate.
        while pending.len() >= 2048 {
            let t = pending.pop_front().expect("nonempty");
            assert!(matches!(t.wait().outcome, Outcome::Ok(_)), "calibration request failed");
        }
        match sched.submit(job) {
            Ok(t) => pending.push_back(t),
            Err(e) => panic!("calibration burst overflowed the queue: {e}"),
        }
    }
    for t in pending {
        assert!(matches!(t.wait().outcome, Outcome::Ok(_)), "calibration request failed");
    }
    let elapsed = t0.elapsed().as_secs_f64();
    let stats = sched.shutdown();
    assert!(stats.is_conserved(), "calibration conservation: {stats:?}");
    assert_eq!(stats.enqueued, count as u64);
    (count as f64 / elapsed, stats.p99_ns)
}

/// Outcome tally sent back by the collector thread.
#[derive(Default)]
struct ReplayTally {
    ok: u64,
    timed_out: u64,
    shed: u64,
    failed: u64,
}

/// The open-loop replay: `total` requests, Poisson-ish arrivals at
/// `rate` req/s split over `SUBMITTERS` independent streams, against a
/// fresh ring-arm scheduler. Returns (elapsed s, accepted, rejected,
/// tally, stats, per-tenant stats).
fn open_loop_replay(
    total: usize,
    rate: f64,
    sweep: &[usize],
    weights: &[Arc<Mat<f64>>],
    variant: KernelVariant,
) -> (f64, u64, u64, ReplayTally, StatsSnapshot, Vec<me_serve::TenantSnapshot>) {
    // Two paced streams: enough to exercise MPMC admission, few enough
    // that pacing overhead cannot starve the shard threads on the small
    // CPU budgets this bench must run under.
    const SUBMITTERS: usize = 2;
    let sched = Arc::new(Scheduler::new(replay_config(QueueKind::Ring, 4096)));
    let (tx, rx) = std::sync::mpsc::channel::<Ticket>();
    let collector = std::thread::spawn(move || {
        let mut tally = ReplayTally::default();
        for t in rx {
            match t.wait().outcome {
                Outcome::Ok(_) => tally.ok += 1,
                Outcome::TimedOut => tally.timed_out += 1,
                Outcome::Shed => tally.shed += 1,
                Outcome::Failed(msg) => {
                    tally.failed += 1;
                    eprintln!("replay request failed: {msg}");
                }
            }
        }
        tally
    });
    let t0 = Instant::now();
    let mut handles = Vec::new();
    for s in 0..SUBMITTERS {
        let sched = Arc::clone(&sched);
        let tx = tx.clone();
        let weights = weights.to_vec();
        let sweep = sweep.to_vec();
        let per = total / SUBMITTERS + usize::from(s < total % SUBMITTERS);
        let lambda = rate / SUBMITTERS as f64;
        handles.push(std::thread::spawn(move || {
            // Superposed per-submitter Poisson streams: exponential gaps
            // at rate λ/SUBMITTERS each.
            let mut rng = me_numerics::Rng64::seed_from_u64(0xAA77 + s as u64);
            let mut arr = me_numerics::Rng64::seed_from_u64(0x5151 ^ s as u64);
            let mut next = Instant::now();
            let mut accepted = 0u64;
            let mut rejected = 0u64;
            for i in 0..per {
                let gap = -(1.0 - arr.next_f64()).ln() / lambda;
                next += Duration::from_secs_f64(gap);
                let now = Instant::now();
                // Sleep-only pacing: once the schedule runs more than
                // ~2 ms ahead, sleep it off; below that, submit
                // immediately (micro-bursts). Sub-millisecond spinning
                // would burn the very cores the shards serve on, and an
                // overloaded open loop must not wait at all — the
                // backlog is the signal.
                if next > now + Duration::from_millis(2) {
                    std::thread::sleep(next - now);
                }
                let spec = replay_spec(s + i * SUBMITTERS, total, &sweep, &mut rng);
                let job = replay_job(spec, &weights, variant, (s as u64) << 40 | i as u64);
                match sched.submit(job) {
                    Ok(t) => {
                        accepted += 1;
                        tx.send(t).expect("collector alive");
                    }
                    // Upstream shed: the open loop drops what a full
                    // queue rejects, and accounts for it separately.
                    Err(SubmitError::QueueFull) => rejected += 1,
                    Err(e) => panic!("unexpected submit error: {e}"),
                }
            }
            (accepted, rejected)
        }));
    }
    drop(tx);
    let mut accepted = 0u64;
    let mut rejected = 0u64;
    for h in handles {
        let (a, r) = h.join().expect("submitter panicked");
        accepted += a;
        rejected += r;
    }
    let tally = collector.join().expect("collector panicked");
    let elapsed = t0.elapsed().as_secs_f64();
    let tenants = sched.tenant_stats();
    let sched = Arc::try_unwrap(sched).map_err(|_| "threads joined").expect("sole owner");
    let stats = sched.shutdown();
    (elapsed, accepted, rejected, tally, stats, tenants)
}

fn run_replay(smoke: bool, variant: KernelVariant) {
    let (total, cal_count, cal_reps, sweep_cap) =
        if smoke { (10_000, 4_000, 3, 1_024) } else { (1_000_000, 20_000, 3, 32_768) };
    let sweep = sweep_ms(sweep_cap);
    let weights = replay_weights();
    println!(
        "serve_replay: {total} requests, {} tenants, skinny m {SKINNY_M:?}, M sweep 1..={sweep_cap}",
        MODELS.len()
    );

    // Gate 1 calibration: best-of-N closed-loop service rate per arm.
    let mut rate_mutex = 0.0f64;
    let mut rate_ring = 0.0f64;
    let mut p99_closed = u64::MAX;
    for rep in 0..cal_reps {
        let (rm, _) = calibrate(QueueKind::Mutex, cal_count, &sweep, &weights, variant, 100 + rep);
        let (rr, p99) = calibrate(QueueKind::Ring, cal_count, &sweep, &weights, variant, 200 + rep);
        rate_mutex = rate_mutex.max(rm);
        rate_ring = rate_ring.max(rr);
        p99_closed = p99_closed.min(p99);
    }
    println!(
        "  calibration (best of {cal_reps}): mutex {rate_mutex:.0} req/s, ring {rate_ring:.0} req/s, closed-loop p99 {:.2} ms",
        p99_closed as f64 / 1e6
    );

    // Gate 2 SLO: generous floor, or 3x the closed-loop p99, whichever
    // is larger; ME_SERVE_SLO_MS overrides for exploratory runs.
    let slo_ns = std::env::var("ME_SERVE_SLO_MS")
        .ok()
        .and_then(|v| v.trim().parse::<u64>().ok())
        .map(|ms| ms * 1_000_000)
        .unwrap_or_else(|| (3 * p99_closed).max(250_000_000));

    // The replay proper: open loop at 60 % of the ring arm's calibrated
    // capacity.
    let rate = 0.6 * rate_ring;
    let (elapsed, accepted, rejected, tally, stats, tenants) =
        open_loop_replay(total, rate, &sweep, &weights, variant);
    let achieved = accepted as f64 / elapsed;
    println!(
        "  open loop: {total} arrivals at {rate:.0}/s target -> {achieved:.0}/s served in {elapsed:.1} s \
         ({accepted} accepted, {rejected} upstream-shed), p99 {:.2} ms (SLO {:.0} ms)",
        stats.p99_ns as f64 / 1e6,
        slo_ns as f64 / 1e6
    );

    // Write the report before asserting, so failures leave evidence.
    let mut report = String::new();
    let _ = writeln!(report, "# serve_replay report");
    let _ = writeln!(report, "mode: {}", if smoke { "smoke" } else { "full" });
    let _ = writeln!(report, "requests: {total}");
    let _ = writeln!(report, "queue_arm: ring (mutex as calibration baseline)");
    let _ = writeln!(report, "kernel: {}", variant.name());
    let _ = writeln!(report, "skinny_m: {SKINNY_M:?}");
    let _ = writeln!(report, "m_sweep: 1..={sweep_cap} (powers of two, once each)");
    let _ = writeln!(report, "\n## tenants (weight, attention kxn, mlp kxn)");
    for (t, m) in MODELS.iter().enumerate() {
        let [attn, mlp] = m.shapes();
        let _ = writeln!(
            report,
            "tenant {t} {}: weight {}, attn {}x{}, mlp {}x{}",
            m.name, m.weight, attn.0, attn.1, mlp.0, mlp.1
        );
    }
    let _ = writeln!(report, "\n## calibration (closed loop, best of {cal_reps})");
    let _ = writeln!(report, "mutex_rate_rps: {rate_mutex:.1}");
    let _ = writeln!(report, "ring_rate_rps: {rate_ring:.1}");
    let _ = writeln!(report, "closed_loop_p99_ms: {:.3}", p99_closed as f64 / 1e6);
    let _ = writeln!(report, "\n## open loop replay (ring arm, 60% of calibrated capacity)");
    let _ = writeln!(report, "target_rate_rps: {rate:.1}");
    let _ = writeln!(report, "achieved_rate_rps: {achieved:.1}");
    let _ = writeln!(report, "elapsed_s: {elapsed:.2}");
    let _ = writeln!(report, "accepted: {accepted}");
    let _ = writeln!(report, "upstream_shed_queue_full: {rejected}");
    let _ = writeln!(
        report,
        "outcomes: ok {} timed_out {} shed {} failed {}",
        tally.ok, tally.timed_out, tally.shed, tally.failed
    );
    let _ = writeln!(
        report,
        "latency_ms: p50 {:.3} p95 {:.3} p99 {:.3} (SLO {:.1})",
        stats.p50_ns as f64 / 1e6,
        stats.p95_ns as f64 / 1e6,
        stats.p99_ns as f64 / 1e6,
        slo_ns as f64 / 1e6
    );
    let _ = writeln!(report, "\n## per-tenant books");
    for ts in &tenants {
        let _ = writeln!(
            report,
            "tenant {} ({}): enqueued {} ok {} timed_out {} shed {} failed {} conserved {}",
            ts.tenant,
            MODELS[ts.tenant as usize % MODELS.len()].name,
            ts.enqueued,
            ts.completed_ok,
            ts.timed_out,
            ts.shed,
            ts.failed,
            ts.is_conserved()
        );
    }
    let _ = writeln!(report, "\n## gates");
    // The throughput gate holds the ring to >= the mutex arm, but only
    // where the ring can win on merit: lock contention needs concurrent
    // lockers, so on a single-core host (everything serialized, the
    // mutex never contended) the two arms measure equal within scheduler
    // noise and a strict comparison is a coin flip. Floors: strict 1.0x
    // for a full run on a multi-core host (the contention regime the
    // ring exists for), 0.9x for a full run on one core, and 0.85x for
    // the short CI smoke calibration, whose confetti-sized requests add
    // park/unpark churn swinging ±10 % run to run. Every floor still
    // fails on a real collapse of the ring arm.
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let tp_floor = if smoke {
        0.85
    } else if cores > 1 {
        1.0
    } else {
        0.9
    };
    let gate_tp = rate_ring >= rate_mutex * tp_floor;
    let gate_slo = stats.p99_ns <= slo_ns;
    let gate_conserved = stats.is_conserved()
        && stats.enqueued == accepted
        && stats.rejected_full == rejected
        && tenants.iter().all(|t| t.is_conserved())
        && tenants.iter().map(|t| t.enqueued).sum::<u64>() == stats.enqueued;
    let _ = writeln!(report, "throughput_floor: {tp_floor} (host cores: {cores})");
    let _ = writeln!(report, "throughput_ring_ge_mutex: {gate_tp}");
    let _ = writeln!(report, "p99_within_slo: {gate_slo}");
    let _ = writeln!(report, "conservation_exact: {gate_conserved}");
    // Workspace-root artifacts/, next to the other emitted artifacts
    // (benches run with the package directory as CWD).
    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../..").join("artifacts");
    std::fs::create_dir_all(&dir).expect("create artifacts dir");
    std::fs::write(dir.join("serve_replay.txt"), &report).expect("write replay report");
    println!("  report: artifacts/serve_replay.txt");

    assert!(
        gate_tp,
        "replay gate: lock-free ring arm ({rate_ring:.0} req/s) must sustain at least \
         {tp_floor:.2}x the mutex arm ({rate_mutex:.0} req/s)"
    );
    assert!(
        gate_slo,
        "replay gate: open-loop p99 {:.2} ms exceeded the SLO {:.2} ms at 60% load",
        stats.p99_ns as f64 / 1e6,
        slo_ns as f64 / 1e6
    );
    assert!(
        gate_conserved,
        "replay gate: conservation broken: accepted {accepted} rejected {rejected} {stats:?} {tenants:?}"
    );
    assert_eq!(
        tally.ok + tally.timed_out + tally.shed + tally.failed,
        accepted,
        "replay gate: collector tally must cover every accepted request"
    );
}
