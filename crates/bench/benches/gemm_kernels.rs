//! Real-walltime benchmarks of the BLAS substrate's GEMM code paths —
//! the measured analogue of Table II's scalar-vs-vectorized comparison
//! (here: serial-dependency-chain naive vs blocked vs SIMD-shaped tiled vs
//! thread-parallel), plus the LAPACK layer and BLAS-1/2 kernels.

use me_bench::crit::{BenchmarkId, Criterion, Throughput};
use me_bench::{criterion_group, criterion_main};
use me_bench::bench_matrix;
use me_engine::HostParallelism;
use me_linalg::{blas1, blas2, gemm, lapack, GemmAlgo, Mat};

fn bench_gemm_variants(c: &mut Criterion) {
    let mut g = c.benchmark_group("gemm_variants");
    // The one knob shared with the execution model and the parallel
    // kernels: ME_THREADS (or the OS) decides how wide Parallel runs.
    let threads = HostParallelism::auto().effective();
    for &n in &[32usize, 64, 128, 256] {
        let a = bench_matrix(n, n, 1);
        let b = bench_matrix(n, n, 2);
        g.throughput(Throughput::Elements((2 * n * n * n) as u64));
        for algo in [GemmAlgo::Naive, GemmAlgo::Blocked, GemmAlgo::Tiled, GemmAlgo::Parallel] {
            // Skip the slowest pairing to keep bench time sane.
            if n > 128 && algo == GemmAlgo::Naive {
                continue;
            }
            let label = match algo {
                GemmAlgo::Parallel => format!("Parallel/t{threads}"),
                _ => format!("{algo:?}"),
            };
            g.bench_with_input(BenchmarkId::new(label, n), &n, |bench, _| {
                let mut cm = Mat::zeros(n, n);
                bench.iter(|| gemm(algo, 1.0, &a, &b, 0.0, &mut cm));
            });
        }
    }
    g.finish();
}

fn bench_lapack(c: &mut Criterion) {
    let mut g = c.benchmark_group("lapack");
    g.sample_size(20);
    for &n in &[64usize, 128] {
        let a = {
            let mut m = bench_matrix(n, n, 3);
            for i in 0..n {
                m[(i, i)] += n as f64;
            }
            m
        };
        let b: Vec<f64> = (0..n).map(|i| (i as f64).sin()).collect();
        g.bench_with_input(BenchmarkId::new("hpl_solve", n), &n, |bench, _| {
            bench.iter(|| lapack::hpl_solve(&a, &b).unwrap())
        });
    }
    g.finish();
}

fn bench_blas12(c: &mut Criterion) {
    let mut g = c.benchmark_group("blas_l1_l2");
    let n = 4096;
    let x: Vec<f64> = (0..n).map(|i| (i as f64).cos()).collect();
    let mut y: Vec<f64> = (0..n).map(|i| (i as f64).sin()).collect();
    g.throughput(Throughput::Elements(n as u64));
    g.bench_function("dot_4096", |b| b.iter(|| blas1::dot(&x, &y)));
    g.bench_function("axpy_4096", |b| b.iter(|| blas1::axpy(0.5, &x, &mut y)));
    let a = bench_matrix(256, 256, 4);
    let xv: Vec<f64> = (0..256).map(|i| i as f64 * 0.1).collect();
    let mut yv = vec![0.0; 256];
    g.bench_function("gemv_256", |b| b.iter(|| blas2::gemv(1.0, &a, &xv, 0.0, &mut yv)));
    g.finish();
}

criterion_group!(kernels, bench_gemm_variants, bench_lapack, bench_blas12);
criterion_main!(kernels);
