//! Real-walltime benchmarks of the BLAS substrate's GEMM code paths —
//! the measured analogue of Table II's scalar-vs-vectorized comparison
//! (here: serial-dependency-chain naive vs blocked vs SIMD-shaped tiled vs
//! thread-parallel), plus the LAPACK layer, BLAS-1/2 kernels, and the
//! micro-kernel variant A/B (`ukernel_variants`).
//!
//! `--kernel scalar|portable|avx2|avx512` (or `ME_KERNEL`) pins the dispatched
//! micro-kernel for the whole run, so any group can be A/B'd across
//! variants; the `ukernel_variants` section always sweeps every variant
//! the host supports and records the single-thread speedups (the paper's
//! SIMD-baseline credibility check) in
//! `artifacts/gemm_kernels_ukernel.txt`.

use me_bench::crit::{BenchmarkId, Criterion, Throughput};
use me_bench::criterion_group;
use me_bench::bench_matrix;
use me_engine::HostParallelism;
use me_linalg::{
    available_variants, avx2_supported, avx512_supported, blas1, blas2, gemm, gemm_tiled_with,
    lapack, selected_kernel, set_kernel_override, GemmAlgo, KernelVariant, Mat,
};
use std::time::Instant;

fn bench_gemm_variants(c: &mut Criterion) {
    let mut g = c.benchmark_group("gemm_variants");
    // The one knob shared with the execution model and the parallel
    // kernels: ME_THREADS (or the OS) decides how wide Parallel runs.
    let threads = HostParallelism::auto().effective();
    for &n in &[32usize, 64, 128, 256] {
        let a = bench_matrix(n, n, 1);
        let b = bench_matrix(n, n, 2);
        g.throughput(Throughput::Elements((2 * n * n * n) as u64));
        for algo in [GemmAlgo::Naive, GemmAlgo::Blocked, GemmAlgo::Tiled, GemmAlgo::Parallel] {
            // Skip the slowest pairing to keep bench time sane.
            if n > 128 && algo == GemmAlgo::Naive {
                continue;
            }
            let label = match algo {
                GemmAlgo::Parallel => format!("Parallel/t{threads}"),
                _ => format!("{algo:?}"),
            };
            g.bench_with_input(BenchmarkId::new(label, n), &n, |bench, _| {
                let mut cm = Mat::zeros(n, n);
                bench.iter(|| gemm(algo, 1.0, &a, &b, 0.0, &mut cm));
            });
        }
    }
    g.finish();
}

fn bench_lapack(c: &mut Criterion) {
    let mut g = c.benchmark_group("lapack");
    g.sample_size(20);
    for &n in &[64usize, 128] {
        let a = {
            let mut m = bench_matrix(n, n, 3);
            for i in 0..n {
                m[(i, i)] += n as f64;
            }
            m
        };
        let b: Vec<f64> = (0..n).map(|i| (i as f64).sin()).collect();
        g.bench_with_input(BenchmarkId::new("hpl_solve", n), &n, |bench, _| {
            bench.iter(|| lapack::hpl_solve(&a, &b).unwrap())
        });
    }
    g.finish();
}

fn bench_blas12(c: &mut Criterion) {
    let mut g = c.benchmark_group("blas_l1_l2");
    let n = 4096;
    let x: Vec<f64> = (0..n).map(|i| (i as f64).cos()).collect();
    let mut y: Vec<f64> = (0..n).map(|i| (i as f64).sin()).collect();
    g.throughput(Throughput::Elements(n as u64));
    g.bench_function("dot_4096", |b| b.iter(|| blas1::dot(&x, &y)));
    g.bench_function("axpy_4096", |b| b.iter(|| blas1::axpy(0.5, &x, &mut y)));
    let a = bench_matrix(256, 256, 4);
    let xv: Vec<f64> = (0..256).map(|i| i as f64 * 0.1).collect();
    let mut yv = vec![0.0; 256];
    g.bench_function("gemv_256", |b| b.iter(|| blas2::gemv(1.0, &a, &xv, 0.0, &mut yv)));
    g.finish();
}

/// Single-thread A/B of the packed GEMM micro-kernel variants at one
/// square size (512³ full, 256³ under `ME_BENCH_SMOKE`), timed directly
/// (min of `reps`) rather than through the criterion shim so the recorded
/// speedups come from identical fixed-iteration loops. Writes the table to
/// `artifacts/gemm_kernels_ukernel.txt` — the bench artifact behind the
/// "AVX2 ≥ 2× scalar" acceptance gate — and cross-checks that every
/// variant's result is bitwise identical to scalar before recording it.
fn bench_ukernel_variants(_c: &mut Criterion) {
    let smoke = std::env::var_os("ME_BENCH_SMOKE").is_some();
    let (n, reps) = if smoke { (256, 2) } else { (512, 3) };
    let a = bench_matrix(n, n, 11);
    let b = bench_matrix(n, n, 12);
    let flops = 2.0 * (n as f64).powi(3);

    let mut c_ref = Mat::zeros(n, n);
    gemm_tiled_with(KernelVariant::Scalar, 1.0, &a, &b, 0.0, &mut c_ref);

    let mut lines = vec![
        format!("# gemm_kernels ukernel A/B: {n}x{n}x{n} f64, single thread"),
        format!("# host avx2+fma detected: {}", avx2_supported()),
        format!("# host avx512f detected: {}", avx512_supported()),
        "# variant  time_ms  gflops  speedup_vs_scalar  bitwise".to_string(),
    ];
    let mut scalar_time = None;
    for v in available_variants() {
        let mut c = Mat::zeros(n, n);
        let mut best = f64::INFINITY;
        for _ in 0..=reps {
            let t0 = Instant::now();
            gemm_tiled_with(v, 1.0, &a, &b, 0.0, &mut c);
            best = best.min(t0.elapsed().as_secs_f64());
        }
        let bitwise = c.as_slice() == c_ref.as_slice();
        assert!(bitwise, "{v} kernel diverged from scalar at n={n}");
        if v == KernelVariant::Scalar {
            scalar_time = Some(best);
        }
        let speedup = scalar_time.map_or(1.0, |s| s / best);
        // The acceptance gate: real SIMD must pay for itself. Both wide
        // variants carry the same one-FMA-per-accumulator dataflow as
        // scalar, so ≥ 2× is a conservative floor for 4-wide (AVX2) and
        // 8-wide (AVX-512) f64 FMA lanes against the scalar loop.
        if matches!(v, KernelVariant::Avx2 | KernelVariant::Avx512) {
            assert!(
                speedup >= 2.0,
                "{v} kernel only {speedup:.2}x over scalar at n={n} (gate: >= 2x)"
            );
        }
        let line = format!(
            "{:<9} {:>8.3} {:>7.2} {:>18.2} {}",
            v.name(),
            best * 1e3,
            flops / best / 1e9,
            speedup,
            if bitwise { "ok" } else { "FAIL" }
        );
        println!("bench ukernel_variants/{line}");
        lines.push(line);
    }

    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let dir = root.join("artifacts");
    let path = dir.join("gemm_kernels_ukernel.txt");
    let written = std::fs::create_dir_all(&dir)
        .and_then(|()| std::fs::write(&path, lines.join("\n") + "\n"));
    match written {
        Ok(()) => println!("  ukernel_variants: wrote {}", path.display()),
        Err(e) => {
            eprintln!("gemm_kernels: failed to write ukernel artifact: {e}");
            std::process::exit(1);
        }
    }
}

criterion_group!(kernels, bench_gemm_variants, bench_lapack, bench_blas12, bench_ukernel_variants);

fn main() {
    // `--kernel <name>` / `--kernel=<name>` pins the dispatched micro-
    // kernel for every group in this run (`ME_KERNEL` works too; the flag
    // wins because it is applied last, as a runtime override).
    let args: Vec<String> = std::env::args().collect();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let value = match arg.strip_prefix("--kernel=") {
            Some(v) => Some(v.to_string()),
            None if arg == "--kernel" => it.next().cloned(),
            None => None,
        };
        if let Some(v) = value {
            match KernelVariant::parse(&v) {
                Some(k) => set_kernel_override(Some(k)),
                None => {
                    eprintln!(
                        "gemm_kernels: unknown --kernel {v:?} (want scalar|portable|avx2|avx512)"
                    );
                    std::process::exit(2);
                }
            }
        }
    }
    println!("gemm_kernels: dispatched kernel = {}", selected_kernel().resolve_supported());
    kernels();
}
