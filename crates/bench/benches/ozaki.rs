//! Benchmarks of the real Ozaki-scheme GEMM: cost vs accuracy target and
//! input dynamic range — the algorithmic work behind Table VIII — plus the
//! splitting primitive in isolation.

use me_bench::crit::{BenchmarkId, Criterion};
use me_bench::{criterion_group, criterion_main};
use me_ozaki::perf::ranged_matrix;
use me_ozaki::{ozaki_gemm, split_rows, OzakiConfig};

fn bench_ozaki_targets(c: &mut Criterion) {
    let mut g = c.benchmark_group("ozaki_gemm_targets");
    g.sample_size(10);
    let n = 32;
    let a = ranged_matrix(n, n, 8.0, 1);
    let b = ranged_matrix(n, n, 8.0, 2);
    for (cfg, name) in [
        (OzakiConfig::sgemm_tc(), "sgemm_equivalent"),
        (OzakiConfig::dgemm_tc(), "dgemm_equivalent"),
        (
            OzakiConfig {
                target: me_ozaki::TargetAccuracy::Exact,
                ..OzakiConfig::dgemm_tc()
            },
            "exact",
        ),
    ] {
        g.bench_function(name, |bench| bench.iter(|| ozaki_gemm(&a, &b, &cfg)));
    }
    g.finish();
}

fn bench_ozaki_ranges(c: &mut Criterion) {
    let mut g = c.benchmark_group("ozaki_gemm_input_range");
    g.sample_size(10);
    let n = 32;
    for decades in [2u32, 8, 16, 32] {
        let a = ranged_matrix(n, n, decades as f64, 3);
        let b = ranged_matrix(n, n, decades as f64, 4);
        let cfg = OzakiConfig::dgemm_tc();
        g.bench_with_input(BenchmarkId::new("dgemm_tc_1e", decades), &decades, |bench, _| {
            bench.iter(|| ozaki_gemm(&a, &b, &cfg))
        });
    }
    g.finish();
}

fn bench_split(c: &mut Criterion) {
    let mut g = c.benchmark_group("ozaki_split");
    let a = ranged_matrix(64, 64, 16.0, 5);
    for beta in [5u32, 7, 11] {
        g.bench_with_input(BenchmarkId::new("split_rows_64x64", beta), &beta, |bench, &bt| {
            bench.iter(|| split_rows(&a, bt, 128))
        });
    }
    g.finish();
}

criterion_group!(ozaki, bench_ozaki_targets, bench_ozaki_ranges, bench_split);
criterion_main!(ozaki);
