//! Serial-vs-N-thread scaling of the zero-copy parallel execution layer.
//!
//! Sweeps `me_par::WorkerPool` widths over the tiled DGEMM (every width
//! runs the same packed micro-kernel on borrowed row-panel views, so the
//! results are bitwise identical to serial — asserted here) and over the
//! Ozaki-scheme GEMM, and reports the measured speedup next to the
//! Amdahl-law figure the execution model predicts for the same knob.
//!
//! `ME_BENCH_SMOKE=1` shrinks the problem sizes so CI can run this as a
//! fast release-mode gate; the full 512³ sweep is the acceptance run for
//! multicore hosts.
//!
//! `--trace` (or `ME_BENCH_TRACE=1`) records the whole sweep with
//! `me-trace`: per-worker `par.job` lanes, the GEMM pack/micro-kernel
//! phases, the Ozaki split/accumulate phases, plus a *modeled* V100 lane
//! (execution-model spans and an NVML-style power counter in simulated
//! time). The result is written to `artifacts/parallel_scaling_trace.json`
//! (Chrome `trace_event`, loadable in chrome://tracing or Perfetto) and
//! `artifacts/parallel_scaling_metrics.prom`, then re-parsed and
//! structurally validated in-process — CI fails if the emitted JSON does
//! not load or the expected lanes/spans are missing.

//! `--kernel scalar|portable|avx2` pins the GEMM micro-kernel variant for
//! the whole sweep (otherwise `ME_KERNEL` / CPUID dispatch decides); the
//! active variant is printed up front and rides into the worker-lane spans
//! and `ukernel.<variant>` trace counters.

use me_bench::bench_matrix;
use me_engine::{catalog, EngineKind, ExecutionModel, GemmShape, HostParallelism, NumericFormat, PowerSampler};
use me_linalg::{gemm_parallel_on, gemm_tiled, selected_kernel, set_kernel_override, KernelVariant, Mat};
use me_numerics::{Seconds, Watts};
use me_ozaki::{ozaki_gemm, ozaki_gemm_parallel_on, OzakiConfig};
use me_par::WorkerPool;
use std::time::Instant;

const POOL_WIDTHS: [usize; 4] = [1, 2, 4, 8];

/// Virtual lane name for the modeled-device timeline.
const MODELED_LANE: &str = "v100 (modeled)";

/// Span names the emitted trace must contain for the smoke gate to pass:
/// the pool, GEMM-phase, and Ozaki-phase instrumentation all have to be
/// visible in one timeline.
const REQUIRED_SPANS: [&str; 6] = [
    "par.job",
    "gemm.pack_a",
    "gemm.pack_b",
    "gemm.micro_kernel",
    "ozaki.split",
    "ozaki.accumulate",
];

/// Emit a modeled V100 timeline (execution-model spans + an NVML-style
/// power poll) on a virtual lane, sharing the trace with the measured
/// sweep above it.
fn emit_modeled_timeline(n: usize) {
    let model = ExecutionModel::new(catalog::v100());
    let shape = GemmShape::square(n);
    let mut t_ns = 0u64;
    for (name, engine, fmt) in [
        ("modeled.dgemm_simd", EngineKind::Simd, NumericFormat::F64),
        ("modeled.sgemm_simd", EngineKind::Simd, NumericFormat::F32),
        ("modeled.hgemm_tc", EngineKind::MatrixEngine, NumericFormat::F16xF32),
    ] {
        if let Ok(r) = model.gemm(shape, engine, fmt) {
            t_ns = r.emit_modeled_span(MODELED_LANE, name, t_ns);
        }
    }
    if let Ok(r) = model.gemm(shape, EngineKind::Simd, NumericFormat::F64) {
        let sampler = PowerSampler::new(Watts(model.device().idle_w));
        let power = sampler.trace_op("modeled_power_w", &r, Seconds(1.0), Seconds(0.2));
        power.emit_modeled_counters(MODELED_LANE);
    }
}

/// Snapshot, export, and structurally validate the trace; exits non-zero
/// on any violation so `ci.sh` catches a broken exporter.
fn write_and_validate_trace() {
    let trace = me_trace::take_snapshot();
    let json = trace.to_chrome_json();
    let prom = trace.to_prometheus();
    // Benches run with the package dir as cwd; anchor the output at the
    // workspace-root artifacts/ next to the other emitted artifacts.
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let dir = root.join("artifacts");
    let json_path = dir.join("parallel_scaling_trace.json");
    let prom_path = dir.join("parallel_scaling_metrics.prom");
    let written = std::fs::create_dir_all(dir)
        .and_then(|()| std::fs::write(&json_path, &json))
        .and_then(|()| std::fs::write(&prom_path, &prom));
    if let Err(e) = written {
        eprintln!("parallel_scaling: failed to write trace artifacts: {e}");
        std::process::exit(1);
    }
    let summary = match me_trace::validate_chrome_trace(&json) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("parallel_scaling: emitted Chrome trace is invalid: {e}");
            std::process::exit(1);
        }
    };
    // One lane per pool worker: the widest pool alone contributes
    // (width − 1) workers plus the submitting thread.
    let max_width = POOL_WIDTHS.iter().copied().max().unwrap_or(1);
    assert!(
        summary.measured_lanes.len() >= max_width,
        "expected >= {max_width} measured lanes, got {}",
        summary.measured_lanes.len()
    );
    for name in REQUIRED_SPANS {
        assert!(summary.span_names.contains(name), "trace is missing span '{name}'");
    }
    assert!(!summary.virtual_lanes.is_empty(), "modeled lane missing from trace");
    println!(
        "  trace: {} spans / {} counter samples on {} measured + {} modeled lanes",
        summary.complete_events,
        summary.counter_events,
        summary.measured_lanes.len(),
        summary.virtual_lanes.len()
    );
    println!("  trace: wrote {} and {}", json_path.display(), prom_path.display());
}

fn time<F: FnMut()>(reps: usize, mut f: F) -> f64 {
    f(); // warm-up
    let t0 = Instant::now();
    for _ in 0..reps {
        f();
    }
    t0.elapsed().as_secs_f64() / reps as f64
}

fn main() {
    let smoke = std::env::var_os("ME_BENCH_SMOKE").is_some();
    // `--kernel <name>` / `--kernel=<name>` pins the dispatched micro-
    // kernel for the whole sweep (`ME_KERNEL` works too; the flag wins
    // because it is applied last, as a runtime override).
    let args: Vec<String> = std::env::args().collect();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let value = match arg.strip_prefix("--kernel=") {
            Some(v) => Some(v.to_string()),
            None if arg == "--kernel" => it.next().cloned(),
            None => None,
        };
        if let Some(v) = value {
            match KernelVariant::parse(&v) {
                Some(k) => set_kernel_override(Some(k)),
                None => {
                    eprintln!("parallel_scaling: unknown --kernel {v:?} (want scalar|portable|avx2)");
                    std::process::exit(2);
                }
            }
        }
    }
    println!(
        "parallel_scaling: dispatched kernel = {}",
        selected_kernel().resolve_supported()
    );
    let trace_requested = std::env::args().any(|a| a == "--trace")
        || std::env::var_os("ME_BENCH_TRACE").is_some();
    let trace_on = trace_requested && me_trace::compiled();
    if trace_requested && !me_trace::compiled() {
        eprintln!("parallel_scaling: built without the `trace` feature; running untraced");
    }
    if trace_on {
        me_trace::set_enabled(true);
    }
    let (n, reps) = if smoke { (96, 2) } else { (512, 3) };

    let a = bench_matrix(n, n, 1);
    let b = bench_matrix(n, n, 2);

    let mut c_ref = Mat::zeros(n, n);
    let serial = time(reps, || gemm_tiled(1.0, &a, &b, 0.0, &mut c_ref));
    println!(
        "parallel_scaling: {n}\u{00d7}{n}\u{00d7}{n} DGEMM, serial tiled {:.3} ms",
        serial * 1e3
    );
    for &t in &POOL_WIDTHS {
        let pool = WorkerPool::new(t);
        let mut c = Mat::zeros(n, n);
        let dt = time(reps, || gemm_parallel_on(&pool, 1.0, &a, &b, 0.0, &mut c));
        let bitwise = c.as_slice() == c_ref.as_slice();
        assert!(bitwise, "parallel result diverged from serial at {t} threads");
        println!(
            "  gemm   threads={t}  time={:>9.3} ms  speedup={:>5.2}x  bitwise=ok",
            dt * 1e3,
            serial / dt
        );
    }

    // Ozaki-scheme scaling: per-line splits + row-panel accumulation both
    // fan over the pool.
    let on = if smoke { 24 } else { 96 };
    let oa = bench_matrix(on, on, 3);
    let ob = bench_matrix(on, on, 4);
    let cfg = OzakiConfig::dgemm_tc();
    let oref = ozaki_gemm(&oa, &ob, &cfg);
    let oserial = time(reps, || {
        let _ = ozaki_gemm(&oa, &ob, &cfg);
    });
    println!("  ozaki  {on}\u{00d7}{on}\u{00d7}{on} serial {:.3} ms", oserial * 1e3);
    for &t in &POOL_WIDTHS {
        let pool = WorkerPool::new(t);
        let mut last = None;
        let dt = time(reps, || {
            last = Some(ozaki_gemm_parallel_on(&oa, &ob, &cfg, &pool));
        });
        if let Some(r) = last {
            assert!(
                r.c.as_slice() == oref.c.as_slice(),
                "ozaki parallel result diverged from serial at {t} threads"
            );
        }
        println!(
            "  ozaki  threads={t}  time={:>9.3} ms  speedup={:>5.2}x  bitwise=ok",
            dt * 1e3,
            oserial / dt
        );
    }

    let knob = HostParallelism::auto();
    println!(
        "  modeled: Amdahl speedup at {} threads (f=0.95) = {:.2}x",
        knob.effective(),
        knob.modeled_speedup(0.95)
    );

    if trace_on {
        emit_modeled_timeline(n);
        write_and_validate_trace();
    }
}
