//! Serial-vs-N-thread scaling of the zero-copy parallel execution layer.
//!
//! Sweeps `me_par::WorkerPool` widths over the tiled DGEMM (every width
//! runs the same packed micro-kernel on borrowed row-panel views, so the
//! results are bitwise identical to serial — asserted here) and over the
//! Ozaki-scheme GEMM, and reports the measured speedup next to the
//! Amdahl-law figure the execution model predicts for the same knob.
//!
//! `ME_BENCH_SMOKE=1` shrinks the problem sizes so CI can run this as a
//! fast release-mode gate; the full 512³ sweep is the acceptance run for
//! multicore hosts.

use me_bench::bench_matrix;
use me_engine::HostParallelism;
use me_linalg::{gemm_parallel_on, gemm_tiled, Mat};
use me_ozaki::{ozaki_gemm, ozaki_gemm_parallel_on, OzakiConfig};
use me_par::WorkerPool;
use std::time::Instant;

const POOL_WIDTHS: [usize; 4] = [1, 2, 4, 8];

fn time<F: FnMut()>(reps: usize, mut f: F) -> f64 {
    f(); // warm-up
    let t0 = Instant::now();
    for _ in 0..reps {
        f();
    }
    t0.elapsed().as_secs_f64() / reps as f64
}

fn main() {
    let smoke = std::env::var_os("ME_BENCH_SMOKE").is_some();
    let (n, reps) = if smoke { (96, 2) } else { (512, 3) };

    let a = bench_matrix(n, n, 1);
    let b = bench_matrix(n, n, 2);

    let mut c_ref = Mat::zeros(n, n);
    let serial = time(reps, || gemm_tiled(1.0, &a, &b, 0.0, &mut c_ref));
    println!(
        "parallel_scaling: {n}\u{00d7}{n}\u{00d7}{n} DGEMM, serial tiled {:.3} ms",
        serial * 1e3
    );
    for &t in &POOL_WIDTHS {
        let pool = WorkerPool::new(t);
        let mut c = Mat::zeros(n, n);
        let dt = time(reps, || gemm_parallel_on(&pool, 1.0, &a, &b, 0.0, &mut c));
        let bitwise = c.as_slice() == c_ref.as_slice();
        assert!(bitwise, "parallel result diverged from serial at {t} threads");
        println!(
            "  gemm   threads={t}  time={:>9.3} ms  speedup={:>5.2}x  bitwise=ok",
            dt * 1e3,
            serial / dt
        );
    }

    // Ozaki-scheme scaling: per-line splits + row-panel accumulation both
    // fan over the pool.
    let on = if smoke { 24 } else { 96 };
    let oa = bench_matrix(on, on, 3);
    let ob = bench_matrix(on, on, 4);
    let cfg = OzakiConfig::dgemm_tc();
    let oref = ozaki_gemm(&oa, &ob, &cfg);
    let oserial = time(reps, || {
        let _ = ozaki_gemm(&oa, &ob, &cfg);
    });
    println!("  ozaki  {on}\u{00d7}{on}\u{00d7}{on} serial {:.3} ms", oserial * 1e3);
    for &t in &POOL_WIDTHS {
        let pool = WorkerPool::new(t);
        let mut last = None;
        let dt = time(reps, || {
            last = Some(ozaki_gemm_parallel_on(&oa, &ob, &cfg, &pool));
        });
        if let Some(r) = last {
            assert!(
                r.c.as_slice() == oref.c.as_slice(),
                "ozaki parallel result diverged from serial at {t} threads"
            );
        }
        println!(
            "  ozaki  threads={t}  time={:>9.3} ms  speedup={:>5.2}x  bitwise=ok",
            dt * 1e3,
            oserial / dt
        );
    }

    let knob = HostParallelism::auto();
    println!(
        "  modeled: Amdahl speedup at {} threads (f=0.95) = {:.2}x",
        knob.effective(),
        knob.modeled_speedup(0.95)
    );
}
