//! Benchmarks of the INT8 Ozaki path: the i8×i8→i32 dot micro-kernel
//! variant A/B (with the "vectorized ≥ 2× scalar" speed gate), the
//! emulated-GEMM substrate comparison (simulated f16 ME vs host INT8),
//! and the analytic FP16-vs-INT8 energy table — written to
//! `artifacts/ozaki_int8.txt` with the accuracy gate asserted in-bench.
//!
//! `--kernel scalar|portable|avx2` (or `ME_KERNEL`) pins the dispatched
//! micro-kernel for the criterion groups; the gated A/B section always
//! sweeps every variant the host supports. `ME_BENCH_SMOKE` shrinks
//! sizes for CI.

use me_bench::crit::{BenchmarkId, Criterion};
use me_bench::criterion_group;
use me_linalg::{
    available_variants, avx2_supported, dot_i8, selected_kernel, set_kernel_override,
    KernelVariant,
};
use me_ozaki::gemm::reference_gemm;
use me_ozaki::perf::ranged_matrix;
use me_ozaki::{
    emit_energy_counters, int8_vs_f16_rows, ozaki_gemm, ozaki_gemm_int8, Int8Engine, OzakiConfig,
};
use std::time::Instant;

fn smoke() -> bool {
    std::env::var_os("ME_BENCH_SMOKE").is_some()
}

/// Deterministic i8 slice values on the Ozaki domain (|x| ≤ 64, the
/// β = 6 extraction bound — well inside every kernel's exactness domain).
fn slice_vec(len: usize, seed: u64) -> Vec<i8> {
    let mut state = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15).max(1);
    (0..len)
        .map(|_| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            ((state % 129) as i64 - 64) as i8
        })
        .collect()
}

fn bench_dot_variants(c: &mut Criterion) {
    let mut g = c.benchmark_group("int8_dot");
    let len = if smoke() { 4096 } else { 65536 };
    let a = slice_vec(len, 1);
    let b = slice_vec(len, 2);
    for v in available_variants() {
        g.bench_with_input(BenchmarkId::new(v.name(), len), &len, |bench, _| {
            bench.iter(|| dot_i8(v, &a, &b))
        });
    }
    g.finish();
}

fn bench_ozaki_substrates(c: &mut Criterion) {
    let mut g = c.benchmark_group("ozaki_substrates");
    g.sample_size(10);
    let n = if smoke() { 24 } else { 48 };
    let a = ranged_matrix(n, n, 8.0, 21);
    let b = ranged_matrix(n, n, 8.0, 22);
    let cfg = OzakiConfig::dgemm_tc();
    let engine = Int8Engine::default();
    g.bench_function("simulated_f16_me", |bench| bench.iter(|| ozaki_gemm(&a, &b, &cfg)));
    g.bench_function("host_int8", |bench| bench.iter(|| ozaki_gemm_int8(&a, &b, &engine)));
    g.finish();
}

/// Gated A/B + report section, timed directly (min of fixed-iteration
/// loops) like `gemm_kernels::bench_ukernel_variants`:
///
/// 1. i8 dot across every supported variant; asserts all variants return
///    the identical i32 (integer associativity) and that the fastest
///    vectorized variant is ≥ 2× scalar — the speed gate.
/// 2. The INT8 Ozaki GEMM accuracy gate vs the f64 reference.
/// 3. The analytic FP16-ME vs INT8 energy rows (A100, Table VIII
///    ranges), asserting INT8 wins throughput and Gflop/J, exported via
///    me-trace counters and `artifacts/ozaki_int8.txt`.
fn bench_int8_gates(_c: &mut Criterion) {
    let sm = smoke();
    let (len, reps) = if sm { (16384, 20) } else { (131072, 50) };
    let a = slice_vec(len, 3);
    let b = slice_vec(len, 4);
    let expect = dot_i8(KernelVariant::Scalar, &a, &b);

    let mut lines = vec![
        format!("# ozaki_int8: i8 dot A/B at len {len}, host avx2+fma: {}", avx2_supported()),
        "# variant  time_us  gi8ops  speedup_vs_scalar".to_string(),
    ];
    let mut scalar_time = None;
    let mut best_vectorized: Option<(KernelVariant, f64)> = None;
    for v in available_variants() {
        let mut best = f64::INFINITY;
        let mut sink = 0i64;
        for _ in 0..reps {
            let t0 = Instant::now();
            let r = dot_i8(v, &a, &b);
            best = best.min(t0.elapsed().as_secs_f64());
            sink = sink.wrapping_add(r as i64);
        }
        assert_eq!(
            dot_i8(v, &a, &b),
            expect,
            "{v} kernel diverged from scalar on the slice domain"
        );
        assert_ne!(sink, i64::MIN, "keep the timed loop live");
        if v == KernelVariant::Scalar {
            scalar_time = Some(best);
        } else if best_vectorized.is_none_or(|(_, t)| best < t) {
            best_vectorized = Some((v, best));
        }
        let speedup = scalar_time.map_or(1.0, |s| s / best);
        let line = format!(
            "{:<9} {:>8.2} {:>7.2} {:>18.2}",
            v.name(),
            best * 1e6,
            2.0 * len as f64 / best / 1e9,
            speedup
        );
        println!("bench int8_dot_gate/{line}");
        lines.push(line);
    }
    let scalar_time = scalar_time.expect("scalar variant always available");
    if let Some((v, t)) = best_vectorized {
        let speedup = scalar_time / t;
        assert!(
            speedup >= 2.0,
            "speed gate: {v} is only {speedup:.2}x scalar (need >= 2x)"
        );
        lines.push(format!("# speed gate: {v} {speedup:.2}x scalar (>= 2x) ok"));
    }

    // Accuracy gate: host INT8 emulation hits DGEMM-equivalent error.
    let n = if sm { 24 } else { 48 };
    let am = ranged_matrix(n, n, 12.0, 23);
    let bm = ranged_matrix(n, n, 12.0, 24);
    let engine = Int8Engine::default();
    let r = ozaki_gemm_int8(&am, &bm, &engine);
    let c_ref = reference_gemm(&am, &bm);
    let err = me_numerics::max_rel_err(r.c.as_slice(), c_ref.as_slice());
    assert!(err < 1e-12, "accuracy gate: int8 ozaki rel err {err} at n={n}");
    lines.push(format!(
        "# accuracy gate: int8 ozaki n={n} range 1e12 beta={} rel_err={err:.3e} (< 1e-12) ok",
        r.beta
    ));

    // Energy table: FP16-ME vs INT8 on the A100, Table VIII ranges.
    let rows = int8_vs_f16_rows();
    emit_energy_counters(&rows);
    lines.push(String::new());
    lines.push("# A100 emulated-DGEMM substrate comparison (n=8192, analytic model)".to_string());
    lines.push("# config  range_1e  slices  products  tflops  watt  joules  gflops_per_j".to_string());
    for r in &rows {
        lines.push(format!(
            "{:<7} {:>8} {:>7} {:>9} {:>7.2} {:>6.1} {:>8.1} {:>13.3}",
            r.config,
            r.range_decades,
            r.slices,
            r.products,
            r.tflops,
            r.watt,
            r.joules,
            r.gflops_per_joule
        ));
    }
    for pair in rows.chunks(2) {
        assert!(
            pair[1].tflops > pair[0].tflops && pair[1].gflops_per_joule > pair[0].gflops_per_joule,
            "energy gate: int8 should beat f16-me at range 1e{}",
            pair[0].range_decades
        );
    }
    lines.push("# energy gate: int8 > f16-me on tflops and gflops/J at every range ok".to_string());

    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let dir = root.join("artifacts");
    let path = dir.join("ozaki_int8.txt");
    let written = std::fs::create_dir_all(&dir)
        .and_then(|()| std::fs::write(&path, lines.join("\n") + "\n"));
    match written {
        Ok(()) => println!("  int8_gates: wrote {}", path.display()),
        Err(e) => {
            eprintln!("ozaki_int8: failed to write artifact: {e}");
            std::process::exit(1);
        }
    }
}

criterion_group!(ozaki_int8, bench_dot_variants, bench_ozaki_substrates, bench_int8_gates);

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let value = match arg.strip_prefix("--kernel=") {
            Some(v) => Some(v.to_string()),
            None if arg == "--kernel" => it.next().cloned(),
            None => None,
        };
        if let Some(v) = value {
            match KernelVariant::parse(&v) {
                Some(k) => set_kernel_override(Some(k)),
                None => {
                    eprintln!("ozaki_int8: unknown --kernel {v:?} (want scalar|portable|avx2)");
                    std::process::exit(2);
                }
            }
        }
    }
    println!("ozaki_int8: dispatched kernel = {}", selected_kernel().resolve_supported());
    ozaki_int8();
}
