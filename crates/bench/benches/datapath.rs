//! Benchmarks of the simulated datapaths (systolic array, SIMD unit) and
//! the mixed-precision iterative-refinement solver.

use me_bench::crit::{BenchmarkId, Criterion};
use me_bench::{criterion_group, criterion_main};
use me_bench::bench_matrix;
use me_engine::systolic::{systolic_gemm, SystolicArray};
use me_engine::{simd_dot, VectorUnit};
use me_numerics::FloatFormat;

fn bench_systolic(c: &mut Criterion) {
    let mut g = c.benchmark_group("systolic_gemm");
    g.sample_size(20);
    for &n in &[16usize, 32, 64] {
        let a = bench_matrix(n, n, 1);
        let b = bench_matrix(n, n, 2);
        let arr = SystolicArray::tensor_core();
        g.bench_with_input(BenchmarkId::new("tensor_core_4x4", n), &n, |bench, _| {
            bench.iter(|| systolic_gemm(&arr, &a, &b))
        });
    }
    g.finish();
}

fn bench_simd(c: &mut Criterion) {
    let mut g = c.benchmark_group("simd_unit");
    let x: Vec<f64> = (0..8192).map(|i| (i as f64).sin()).collect();
    let y: Vec<f64> = (0..8192).map(|i| (i as f64).cos()).collect();
    for (name, unit) in [
        ("sse2_2xf64", VectorUnit::sse2_f64()),
        ("avx2_4xf64", VectorUnit::avx2_f64()),
        ("wide_8xf64", VectorUnit::wide_f64()),
    ] {
        g.bench_function(format!("dot_8192_{name}"), |bench| {
            bench.iter(|| simd_dot(&unit, &x, &y))
        });
    }
    g.finish();
}

fn bench_ir_solve(c: &mut Criterion) {
    let mut g = c.benchmark_group("mixed_precision_ir");
    g.sample_size(10);
    let n = 64;
    let a = {
        let mut m = bench_matrix(n, n, 3);
        for i in 0..n {
            m[(i, i)] += n as f64;
        }
        m
    };
    let b: Vec<f64> = (0..n).map(|i| (i as f64).sin()).collect();
    for (name, fmt) in [
        ("f32_factorization", FloatFormat::F32),
        ("f16_factorization", FloatFormat::F16),
    ] {
        g.bench_function(name, |bench| {
            bench.iter(|| me_linalg::ir_solve(&a, &b, fmt, 1e-13, 40).unwrap())
        });
    }
    g.bench_function("f64_direct_solve", |bench| {
        bench.iter(|| me_linalg::hpl_solve(&a, &b).unwrap())
    });
    g.finish();
}

fn bench_ozaki_parallel(c: &mut Criterion) {
    let mut g = c.benchmark_group("ozaki_parallel");
    g.sample_size(10);
    let a = me_ozaki::perf::ranged_matrix(48, 48, 8.0, 1);
    let b = me_ozaki::perf::ranged_matrix(48, 48, 8.0, 2);
    let cfg = me_ozaki::OzakiConfig::dgemm_tc();
    for threads in [1usize, 2, 4] {
        g.bench_with_input(BenchmarkId::new("dgemm_tc_48", threads), &threads, |bench, &t| {
            bench.iter(|| me_ozaki::ozaki_gemm_parallel(&a, &b, &cfg, t))
        });
    }
    g.finish();
}

criterion_group!(datapath, bench_systolic, bench_simd, bench_ir_solve, bench_ozaki_parallel);
criterion_main!(datapath);
