//! # me-bench
//!
//! Benchmark harness on the in-tree criterion-compatible shim
//! ([`crit`]). Bench binaries (feature `external-bench`):
//!
//! - `paper_artifacts` — one benchmark group per paper table/figure: each
//!   group times the full regeneration of that artifact through the
//!   pipeline and prints the artifact itself once (so `cargo bench`
//!   reproduces the paper's rows/series alongside the timings),
//! - `gemm_kernels` — the BLAS substrate's GEMM code paths (naive /
//!   blocked / tiled / parallel) on real matrices: the measured-walltime
//!   analogue of Table II's scalar-vs-vectorized comparison,
//! - `ozaki` — the real Ozaki-scheme GEMM across accuracy targets and
//!   input ranges (the algorithmic cost behind Table VIII).

pub mod crit;

/// Shared helper: deterministic matrix for benches.
pub fn bench_matrix(rows: usize, cols: usize, seed: u64) -> me_linalg::Mat<f64> {
    let mut state = seed.wrapping_mul(0x9e3779b97f4a7c15) | 1;
    me_linalg::Mat::from_fn(rows, cols, |_, _| {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        ((state >> 33) as f64 / (1u64 << 31) as f64) - 0.5
    })
}
