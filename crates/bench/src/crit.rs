//! A small, criterion-compatible benchmark harness with no external crates.
//!
//! The bench targets were written against the criterion API (`Criterion`,
//! `BenchmarkId`, `Throughput`, benchmark groups, `bench.iter(..)`). This
//! module reimplements exactly the surface those targets use, so the same
//! bench sources compile and run fully offline. It is a measurement
//! harness, not a statistics engine: each benchmark runs a warm-up probe,
//! sizes its samples to a wall-clock budget, and reports the median and
//! minimum per-iteration time (plus throughput when declared).

use std::fmt;
use std::hint::black_box;
use std::time::{Duration, Instant};

/// Per-sample wall-clock budget: long enough to amortize timer overhead,
/// short enough that a full `cargo bench` run stays interactive.
const SAMPLE_BUDGET: Duration = Duration::from_millis(8);

/// Top-level benchmark driver (the shim's analogue of `criterion::Criterion`).
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 30 }
    }
}

impl Criterion {
    /// Run one stand-alone benchmark.
    pub fn bench_function<F>(&mut self, name: impl fmt::Display, routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(&name.to_string(), self.sample_size, None, routine);
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl fmt::Display) -> BenchmarkGroup<'_> {
        let sample_size = self.sample_size;
        BenchmarkGroup { _c: self, name: name.to_string(), sample_size, throughput: None }
    }
}

/// Declared work per iteration, used to report throughput.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Iterations process this many elements each.
    Elements(u64),
    /// Iterations process this many bytes each.
    Bytes(u64),
}

/// Identifier of one parameterized benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    full: String,
}

impl BenchmarkId {
    /// `function_name/parameter` identifier, as criterion renders it.
    pub fn new(function_name: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        BenchmarkId { full: format!("{function_name}/{parameter}") }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.full)
    }
}

/// A group of benchmarks sharing a name prefix and settings.
pub struct BenchmarkGroup<'a> {
    _c: &'a mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Set the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Declare the per-iteration work for throughput reporting.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Run one benchmark in this group.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id);
        run_benchmark(&label, self.sample_size, self.throughput, routine);
        self
    }

    /// Run one benchmark with an input value passed to the routine.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id);
        run_benchmark(&label, self.sample_size, self.throughput, |b| routine(b, input));
        self
    }

    /// Close the group (kept for API compatibility; nothing to flush).
    pub fn finish(&mut self) {}
}

/// Timing context handed to each benchmark routine.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Time `iters` calls of the routine; results are passed through
    /// [`black_box`] so the optimizer cannot delete the measured work.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut routine: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

/// Warm up, choose an iteration count that fills the sample budget, take
/// `sample_size` samples, and print a one-line summary.
fn run_benchmark<F>(label: &str, sample_size: usize, throughput: Option<Throughput>, mut routine: F)
where
    F: FnMut(&mut Bencher),
{
    // Warm-up probe: one iteration, also the per-iter time estimate.
    let mut b = Bencher { iters: 1, elapsed: Duration::ZERO };
    routine(&mut b);
    let probe = b.elapsed.max(Duration::from_nanos(1));
    let iters = (SAMPLE_BUDGET.as_nanos() / probe.as_nanos()).clamp(1, 1_000_000) as u64;

    let mut per_iter_ns: Vec<f64> = Vec::with_capacity(sample_size);
    for _ in 0..sample_size {
        let mut s = Bencher { iters, elapsed: Duration::ZERO };
        routine(&mut s);
        per_iter_ns.push(s.elapsed.as_nanos() as f64 / iters as f64);
    }
    per_iter_ns.sort_by(f64::total_cmp);
    let median = per_iter_ns[per_iter_ns.len() / 2];
    let min = per_iter_ns[0];

    let rate = throughput.map(|t| {
        let (n, unit) = match t {
            Throughput::Elements(n) => (n, "elem"),
            Throughput::Bytes(n) => (n, "B"),
        };
        format!(", {} {unit}/s", human_rate(n as f64 * 1e9 / median))
    });
    println!(
        "bench {label:<48} median {} / iter (min {}){}",
        human_time(median),
        human_time(min),
        rate.unwrap_or_default()
    );
}

/// Render a nanosecond count with an adaptive unit.
fn human_time(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:.0} ns")
    } else if ns < 1e6 {
        format!("{:.2} µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.2} ms", ns / 1e6)
    } else {
        format!("{:.3} s", ns / 1e9)
    }
}

/// Render an events-per-second rate with an adaptive SI prefix.
fn human_rate(per_s: f64) -> String {
    if per_s < 1e3 {
        format!("{per_s:.1}")
    } else if per_s < 1e6 {
        format!("{:.2} K", per_s / 1e3)
    } else if per_s < 1e9 {
        format!("{:.2} M", per_s / 1e6)
    } else {
        format!("{:.2} G", per_s / 1e9)
    }
}

/// Define a bench group function running each target against one
/// [`Criterion`] instance (compatible with `criterion::criterion_group!`).
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::crit::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Define `fn main()` running the listed bench groups (compatible with
/// `criterion::criterion_main!`).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_the_routine() {
        let mut c = Criterion::default();
        let mut calls = 0u64;
        c.bench_function("shim_smoke", |b| {
            b.iter(|| {
                calls += 1;
                calls
            })
        });
        assert!(calls > 0);
    }

    #[test]
    fn groups_respect_settings_and_inputs() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("shim_group");
        g.sample_size(3);
        g.throughput(Throughput::Elements(128));
        let mut seen = 0usize;
        g.bench_with_input(BenchmarkId::new("id", 128), &128usize, |b, &n| {
            b.iter(|| {
                seen = n;
                n * 2
            })
        });
        g.finish();
        assert_eq!(seen, 128);
    }

    #[test]
    fn benchmark_id_renders_like_criterion() {
        assert_eq!(BenchmarkId::new("gemm", 64).to_string(), "gemm/64");
    }

    #[test]
    fn human_units_pick_sensible_ranges() {
        assert_eq!(human_time(500.0), "500 ns");
        assert_eq!(human_time(2_500.0), "2.50 µs");
        assert_eq!(human_time(3.2e7), "32.00 ms");
        assert_eq!(human_time(2.0e9), "2.000 s");
        assert_eq!(human_rate(999.0), "999.0");
        assert_eq!(human_rate(2.0e6), "2.00 M");
    }
}
