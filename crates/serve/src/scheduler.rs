//! The sharded, batching scheduler.
//!
//! Data path: [`Scheduler::submit`] hashes the request's [`BucketKey`] to
//! a shard and admits it to that shard's bounded queue (backpressure: a
//! full queue rejects with [`SubmitError::QueueFull`]). Each shard owns
//! one scheduler thread and one [`me_par::WorkerPool`]; the thread pops
//! the queue head, coalesces up to `batch_max` same-bucket requests
//! (FIFO within the bucket, non-matching requests keep their relative
//! order), and executes the batch:
//!
//! - **GEMM buckets** share one `B` operand (`Arc` identity), one alpha,
//!   and one kernel variant, so the batch row-stacks the `A` operands
//!   into a single `(Σmᵢ) × k × n` GEMM on the shard's pool. This is the
//!   batching payoff the paper's utilization argument needs: one B-pack
//!   per batch instead of per request, full MR-tile occupancy for skinny
//!   requests — and it is **bitwise identical** to running each request
//!   alone, because the packed core's per-element FMA order never
//!   depends on the row partition (`me-linalg::blas3`'s fixed-kernel
//!   guarantee).
//! - **Ozaki buckets** execute per request, fanned over the pool; each
//!   request is the exact serial [`me_ozaki::ozaki_gemm`].
//!
//! ## Queue arms
//!
//! The hot admission path runs on one of two interchangeable queues,
//! selected by [`ServeConfig::queue`] / `ME_QUEUE` (see
//! [`crate::resolve_queue`]):
//!
//! - [`QueueKind::Ring`] (default): a bounded lock-free Vyukov MPMC ring
//!   ([`crate::ring::MpmcRing`]) fronted by a single atomic admission
//!   gate (closed-bit + logical depth in one word). Producers never take
//!   a lock; the shard thread drains the ring into a consumer-local
//!   ready queue and parks on a `Condvar` **only at the idle edge**
//!   (SeqCst-fence Dekker handshake against the producers — DESIGN.md
//!   §14). Per-tenant deficit-weighted fair selection runs on this arm.
//! - [`QueueKind::Mutex`]: the original `Mutex<VecDeque>` queue, kept
//!   bitwise-intact (strict FIFO, no tenant weighting) as the
//!   differential baseline — `tests/differential.rs` replays identical
//!   seeded traces through both arms and requires identical outcomes and
//!   bitwise-identical GEMM payloads.
//!
//! Robustness (identical on both arms): per-request deadlines (checked
//! at dequeue and again after execution), bounded retries with
//! exponential backoff for transient failures, drop-head load shedding
//! beyond the configured watermark, and panic isolation — a panicking
//! job fails its own ticket and never takes down the shard. The shard
//! thread alone resolves tickets, in batch FIFO order, stamping a global
//! resolution sequence number and the submission→resolution latency
//! (p50/p95/p99 in [`StatsSnapshot`]); the conservation counters account
//! for every accepted request exactly once, per tenant and in total.

use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{fence, AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use me_linalg::{
    gemm_parallel_on_prepacked_with, gemm_parallel_on_with, gemm_tiled_prepacked_with,
    gemm_tiled_with, Mat, PackedB,
};
use me_ozaki::ozaki_gemm;

use crate::cache::{CacheStats, WeightCache};
use crate::fault::{Fault, FaultPlan, FaultStage, INJECTED_PANIC};
use crate::request::{
    BucketKey, Completion, Job, JobKind, Outcome, SubmitError, Ticket, TicketState,
};
use crate::ring::MpmcRing;
use crate::stats::{ServeStats, StatsSnapshot, TenantSnapshot};

/// Ceiling on the retry-backoff exponent (backoff = base · 2^min(attempt, CAP)).
const BACKOFF_EXP_CAP: u32 = 10;
// The backoff multiplier is `1u32 << exp`: a cap at or beyond the u32
// width would make the shift overflow (or, pre-hardening, wrap to a
// silent zero backoff). Fail the build, not the retry path.
const _: () = assert!(BACKOFF_EXP_CAP < 32, "backoff exponent cap must fit a u32 shift");

/// Which per-shard queue implementation the scheduler runs. Resolved at
/// [`Scheduler::new`] by [`crate::resolve_queue`] (`ME_QUEUE` env under
/// the DESIGN.md §10 startup-read contract).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueueKind {
    /// The original `Mutex<VecDeque>` queue: strict FIFO, no tenant
    /// weighting. Kept as the differential baseline.
    Mutex,
    /// The lock-free Vyukov MPMC ring with atomic admission gate,
    /// Condvar parking at the idle edge only, and per-tenant
    /// deficit-weighted fair selection. The default.
    Ring,
}

/// Scheduler configuration. `Default` is a production-shaped setup:
/// auto queue arm (`ME_QUEUE`, else the lock-free ring), auto
/// shards/threads, a 1024-deep queue per shard, batches of up to 64,
/// two retries with 1 ms base backoff, shedding disabled (watermark =
/// capacity), single-tenant, no fault injection.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Queue arm; `None` = auto ([`crate::resolve_queue`]: `ME_QUEUE`
    /// `mutex`/`ring`, else [`QueueKind::Ring`]). Read once at
    /// [`Scheduler::new`] — see DESIGN.md §10 for the startup-read
    /// contract.
    pub queue: Option<QueueKind>,
    /// Shard count; `0` = auto ([`crate::resolve_shards`]: `ME_SHARDS`,
    /// else min(4, available parallelism)). Read once at
    /// [`Scheduler::new`] — see DESIGN.md §10 for the startup-read
    /// contract.
    pub shards: usize,
    /// Worker-pool width per shard; `0` = auto
    /// ([`me_par::resolve_threads`]: `ME_THREADS`, else the OS).
    pub shard_threads: usize,
    /// Bounded per-shard queue capacity (ready + delayed); a full queue
    /// rejects new submissions with [`SubmitError::QueueFull`]. Retries
    /// re-enter above this bound so an admitted request is never lost.
    pub queue_capacity: usize,
    /// Drop-head shedding watermark: when a shard starts a cycle with
    /// more than this many ready requests, the oldest excess resolves
    /// [`Outcome::Shed`]. `0` means "= capacity" (shedding only via
    /// backpressure).
    pub shed_watermark: usize,
    /// Maximum requests coalesced into one batched execution.
    pub batch_max: usize,
    /// Retries allowed after a transient failure before the request
    /// resolves [`Outcome::Failed`].
    pub max_retries: u32,
    /// Base of the exponential retry backoff.
    pub backoff_base: Duration,
    /// Deterministic fault plan (tests/benches only; `None` in
    /// production).
    pub fault_plan: Option<FaultPlan>,
    /// Prepacked-B weight cache bound in bytes of packed payload.
    /// `usize::MAX` = auto ([`crate::resolve_weight_cache`]:
    /// `ME_WEIGHT_CACHE`, else 64 MiB); `0` disables the cache entirely
    /// (every batch re-packs, the pre-cache behavior). Resolved once at
    /// [`Scheduler::new`] under the §10 startup-read contract.
    pub weight_cache_bytes: usize,
    /// Per-tenant weights for deficit-weighted fair selection on the
    /// ring arm; empty = auto ([`crate::resolve_tenant_weights`]:
    /// `ME_TENANT_WEIGHTS` comma list, else single-tenant FIFO). Tenant
    /// ids map onto slots modulo the weight count; zero weights clamp
    /// to 1. The mutex arm ignores weights (strict FIFO) by design.
    pub tenant_weights: Vec<u64>,
    /// Startup blocking-autotune policy; `None` = auto
    /// ([`crate::resolve_autotune`]: `ME_AUTOTUNE` `startup`/`off`, else
    /// off). With [`AutotunePolicy::Startup`] resolved, `Scheduler::new`
    /// runs the quick GEMMbench sweep once — loading the persisted
    /// artifact instead when one exists — and installs the winners
    /// before any shard worker starts. Read once under the §10
    /// startup-read contract.
    pub autotune: Option<crate::AutotunePolicy>,
    /// Autotune artifact location; `None` = `artifacts/autotune.json`
    /// (the path the benches share). Only consulted when the resolved
    /// policy is [`AutotunePolicy::Startup`].
    pub autotune_path: Option<std::path::PathBuf>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            queue: None,
            shards: 0,
            shard_threads: 0,
            queue_capacity: 1024,
            shed_watermark: 0,
            batch_max: 64,
            max_retries: 2,
            backoff_base: Duration::from_millis(1),
            fault_plan: None,
            weight_cache_bytes: usize::MAX,
            tenant_weights: Vec::new(),
            autotune: None,
            autotune_path: None,
        }
    }
}

/// One admitted request, as it lives in a shard queue.
struct Pending {
    id: u64,
    key: BucketKey,
    job: JobKind,
    deadline: Option<Instant>,
    attempt: u32,
    /// Tenant slot (already reduced modulo the configured slot count).
    tenant: u32,
    /// Submission instant, for the latency histogram.
    submitted: Instant,
    ticket: Arc<TicketState>,
}

/// A retried request waiting out its backoff.
struct Delayed {
    ready_at: Instant,
    seq: u64,
    pending: Pending,
}

struct QueueState {
    ready: VecDeque<Pending>,
    delayed: Vec<Delayed>,
    shutdown: bool,
    /// Monotone sequence for stable ordering of same-instant retries.
    delay_seq: u64,
}

/// The mutex queue arm: the original bounded `Mutex<VecDeque>`.
struct MutexQueue {
    state: Mutex<QueueState>,
    cv: Condvar,
    capacity: usize,
}

impl MutexQueue {
    fn lock(&self) -> MutexGuard<'_, QueueState> {
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }
}

/// Closed bit of the ring arm's admission gate; the low 63 bits hold the
/// logical queue depth (in-ring + consumer-local ready + delayed +
/// admissions between gate-CAS and ring-publish).
const GATE_CLOSED: u64 = 1 << 63;

/// The lock-free queue arm: admissions CAS the gate (bound + shutdown in
/// one atomic word) and publish through the MPMC ring; the park
/// mutex/condvar pair is touched **only** on the idle edge (empty ring)
/// and by shutdown, never on the hot path.
struct RingQueue {
    ring: MpmcRing<Pending>,
    /// `GATE_CLOSED` bit + logical depth. One word, so the shard
    /// thread's exit check (`closed && depth == 0`) can never race an
    /// in-flight admission: an admission either CASes depth up before
    /// the close (the exit check sees it) or observes the closed bit and
    /// rejects.
    gate: AtomicU64,
    /// Parking lot for the shard thread's idle edge.
    park: Mutex<()>,
    cv: Condvar,
    /// Whether the shard thread is (about to be) parked; producers skip
    /// the park lock entirely while this is false. The SeqCst
    /// store/fence handshake against `ring` publish makes the skip safe
    /// (DESIGN.md §14).
    parked: AtomicBool,
    capacity: u64,
}

impl RingQueue {
    /// Wake the shard thread if it is parked (or about to park). The
    /// notify happens under the park lock, so a consumer that re-checked
    /// the ring under that same lock either saw our push or is already
    /// waiting on the condvar.
    // me-verify: hot
    fn wake(&self) {
        fence(Ordering::SeqCst);
        if self.parked.load(Ordering::Relaxed) {
            let _guard = self.park.lock().unwrap_or_else(|e| e.into_inner());
            self.cv.notify_all();
        }
    }
}

/// One shard's queue, either arm.
enum ShardQueue {
    Mutex(MutexQueue),
    Ring(RingQueue),
}

/// Everything a shard thread needs, cloneable into the thread.
#[derive(Clone)]
struct ShardCtx {
    stats: Arc<ServeStats>,
    order: Arc<AtomicU64>,
    plan: Option<FaultPlan>,
    width: usize,
    batch_max: usize,
    shed_watermark: usize,
    max_retries: u32,
    backoff_base: Duration,
    /// Resolved per-tenant weights (len ≥ 1, all ≥ 1).
    tenant_weights: Arc<[u64]>,
    /// Shared prepacked-B weight cache; `None` = caching disabled.
    cache: Option<Arc<WeightCache>>,
}

/// The batched, sharded GEMM request scheduler. See the module docs for
/// the data path; see [`ServeConfig`] for the knobs.
///
/// Dropping the scheduler (or calling [`Scheduler::shutdown`]) drains
/// gracefully: no new submissions are accepted, every already-admitted
/// request — including in-flight retries — resolves, and the shard
/// threads are joined.
pub struct Scheduler {
    queues: Vec<Arc<ShardQueue>>,
    threads: Vec<Option<JoinHandle<()>>>,
    stats: Arc<ServeStats>,
    order: Arc<AtomicU64>,
    next_id: AtomicU64,
    accepting: AtomicBool,
    plan: Option<FaultPlan>,
    pool_width: usize,
    queue_kind: QueueKind,
    tenant_weights: Arc<[u64]>,
    cache: Option<Arc<WeightCache>>,
}

impl Scheduler {
    /// Build and start a scheduler. Queue arm, shard count, pool width,
    /// tenant weights, and cache size resolve through
    /// [`crate::resolve_queue`] / [`crate::resolve_shards`] /
    /// [`me_par::resolve_threads`] / [`crate::resolve_tenant_weights`] /
    /// [`crate::resolve_weight_cache`] **here, once** — environment
    /// changes after construction do not retarget a live scheduler.
    pub fn new(config: ServeConfig) -> Scheduler {
        if crate::resolve_autotune(config.autotune) == crate::AutotunePolicy::Startup {
            let path = config
                .autotune_path
                .clone()
                .unwrap_or_else(|| std::path::PathBuf::from("artifacts/autotune.json"));
            let sweep = me_linalg::blas3::autotune::SweepConfig::QUICK;
            match me_linalg::blas3::autotune::ensure_autotuned(&path, sweep) {
                Ok(_) => me_trace::counter_add("serve.autotune_startup", 1),
                // A failed sweep must not take the serving layer down:
                // the compiled blocking defaults are always valid.
                Err(e) => eprintln!(
                    "me-serve: startup autotune failed ({e}); keeping compiled blocking defaults"
                ),
            }
        }
        let kind = crate::resolve_queue(config.queue);
        let nshards = crate::resolve_shards(config.shards);
        let width = me_par::resolve_threads(config.shard_threads);
        let capacity = config.queue_capacity.max(1);
        let watermark = if config.shed_watermark == 0 {
            capacity
        } else {
            config.shed_watermark.clamp(1, capacity)
        };
        let tenant_weights: Arc<[u64]> =
            crate::resolve_tenant_weights(&config.tenant_weights).into();
        let stats = Arc::new(ServeStats::new(tenant_weights.len()));
        let order = Arc::new(AtomicU64::new(0));
        let cache_bytes = crate::resolve_weight_cache(config.weight_cache_bytes);
        let cache = if cache_bytes == 0 {
            None
        } else {
            Some(Arc::new(WeightCache::new(cache_bytes)))
        };
        let mut queues = Vec::with_capacity(nshards);
        let mut threads = Vec::with_capacity(nshards);
        for i in 0..nshards {
            let queue = Arc::new(match kind {
                QueueKind::Mutex => ShardQueue::Mutex(MutexQueue {
                    state: Mutex::new(QueueState {
                        ready: VecDeque::new(),
                        delayed: Vec::new(),
                        shutdown: false,
                        delay_seq: 0,
                    }),
                    cv: Condvar::new(),
                    capacity,
                }),
                QueueKind::Ring => ShardQueue::Ring(RingQueue {
                    ring: MpmcRing::new(capacity),
                    gate: AtomicU64::new(0),
                    park: Mutex::new(()),
                    cv: Condvar::new(),
                    parked: AtomicBool::new(false),
                    capacity: capacity as u64,
                }),
            });
            let ctx = ShardCtx {
                stats: Arc::clone(&stats),
                order: Arc::clone(&order),
                plan: config.fault_plan,
                width,
                batch_max: config.batch_max.max(1),
                shed_watermark: watermark,
                max_retries: config.max_retries,
                backoff_base: config.backoff_base,
                tenant_weights: Arc::clone(&tenant_weights),
                cache: cache.clone(),
            };
            let builder = std::thread::Builder::new().name(format!("me-serve-shard-{i}"));
            // If the OS refuses the spawn, the shard runs in synchronous
            // fallback mode: submissions targeting it execute inline on
            // the caller's thread (see `submit`). Nothing is lost, only
            // the asynchrony.
            let thread_queue = Arc::clone(&queue);
            let handle = builder
                .spawn(move || match &*thread_queue {
                    ShardQueue::Mutex(mq) => mutex_shard_loop(ctx, mq),
                    ShardQueue::Ring(rq) => ring_shard_loop(ctx, rq),
                })
                .ok();
            queues.push(queue);
            threads.push(handle);
        }
        Scheduler {
            queues,
            threads,
            stats,
            order,
            next_id: AtomicU64::new(0),
            accepting: AtomicBool::new(true),
            plan: config.fault_plan,
            pool_width: width,
            queue_kind: kind,
            tenant_weights,
            cache,
        }
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.queues.len()
    }

    /// Worker-pool width each shard executes with.
    pub fn pool_width(&self) -> usize {
        self.pool_width
    }

    /// Which queue arm this scheduler resolved to at construction.
    pub fn queue_kind(&self) -> QueueKind {
        self.queue_kind
    }

    /// The resolved per-tenant weights (len ≥ 1, every weight ≥ 1).
    pub fn tenant_weights(&self) -> &[u64] {
        &self.tenant_weights
    }

    /// Snapshot the conservation counters, with the weight-cache
    /// counters folded in when caching is enabled.
    pub fn stats(&self) -> StatsSnapshot {
        self.snapshot_with_cache()
    }

    /// Per-tenant conservation snapshots, one per configured weight
    /// slot.
    pub fn tenant_stats(&self) -> Vec<TenantSnapshot> {
        self.stats.tenant_snapshots()
    }

    /// The full submission→resolution latency histogram (log2 buckets,
    /// nanoseconds) — the source of the snapshot's p50/p95/p99 fields,
    /// exposed for SLO calibration and exporters.
    pub fn latency_histogram(&self) -> me_trace::Histogram {
        self.stats.latency_histogram()
    }

    /// Snapshot the prepacked-B weight cache counters; `None` when the
    /// cache is disabled (`weight_cache_bytes == 0` or
    /// `ME_WEIGHT_CACHE=0`).
    pub fn cache_stats(&self) -> Option<CacheStats> {
        self.cache.as_ref().map(|c| c.stats())
    }

    fn snapshot_with_cache(&self) -> StatsSnapshot {
        let mut snap = self.stats.snapshot();
        if let Some(cs) = self.cache_stats() {
            snap.cache_hits = cs.hits;
            snap.cache_misses = cs.misses;
            snap.cache_evictions = cs.evictions;
            snap.cache_pack_bytes_saved = cs.pack_bytes_saved;
        }
        snap
    }

    /// Submit a request. On success the returned [`Ticket`] resolves
    /// exactly once; on failure no ticket exists and the request is not
    /// part of the conservation accounting.
    pub fn submit(&self, job: Job) -> Result<Ticket, SubmitError> {
        let _s = me_trace::span("serve.enqueue", "serve");
        if !job.shape_ok() {
            return Err(SubmitError::BadShape);
        }
        if !self.accepting.load(Ordering::Acquire) {
            ServeStats::bump(&self.stats.rejected_shutdown);
            return Err(SubmitError::ShuttingDown);
        }
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let now = Instant::now();
        let deadline = job.timeout.map(|t| now + t);
        if let Some(plan) = &self.plan {
            FaultPlan::apply_delay(plan.decide(FaultStage::Enqueue, id, 0));
        }
        let key = BucketKey::of(&job);
        let shard = (key.shard_hash() % self.queues.len() as u64) as usize;
        let tenant = job.tenant.0 % self.tenant_weights.len() as u32;
        let ticket_state = TicketState::new();
        let pending = Pending {
            id,
            key,
            job: job.kind,
            deadline,
            attempt: 0,
            tenant,
            submitted: now,
            ticket: Arc::clone(&ticket_state),
        };
        let has_thread = self.threads[shard].is_some();
        match &*self.queues[shard] {
            ShardQueue::Mutex(mq) => self.submit_mutex(mq, pending, has_thread)?,
            ShardQueue::Ring(rq) => self.submit_ring(rq, pending, has_thread)?,
        }
        Ok(Ticket { state: ticket_state, id })
    }

    /// Mutex-arm admission. The `enqueued` counters are bumped **under
    /// the queue lock, before the push** — the shard thread can only
    /// observe the request after the unlock, so any snapshot that sees a
    /// resolution also sees its admission (stats.rs ordering contract).
    fn submit_mutex(
        &self,
        mq: &MutexQueue,
        pending: Pending,
        has_thread: bool,
    ) -> Result<(), SubmitError> {
        let tenant = pending.tenant;
        let inline = {
            let mut q = mq.lock();
            if q.shutdown {
                ServeStats::bump(&self.stats.rejected_shutdown);
                return Err(SubmitError::ShuttingDown);
            }
            if q.ready.len() + q.delayed.len() >= mq.capacity {
                ServeStats::bump(&self.stats.rejected_full);
                me_trace::counter_add("serve.rejected", 1);
                return Err(SubmitError::QueueFull);
            }
            ServeStats::bump(&self.stats.enqueued);
            ServeStats::bump(&self.stats.tenant_slot(tenant).enqueued);
            if has_thread {
                q.ready.push_back(pending);
                let depth = q.ready.len() as u64;
                ServeStats::record_max(&self.stats.queue_high_water, depth);
                me_trace::hist_record("serve.queue_depth", depth);
                mq.cv.notify_one();
                None
            } else {
                // Synchronous fallback shard (spawn failed at startup).
                Some(pending)
            }
        };
        me_trace::counter_add("serve.enqueued", 1);
        if let Some(pending) = inline {
            self.execute_inline(pending);
        }
        Ok(())
    }

    /// Ring-arm admission: one CAS on the gate decides
    /// shutdown/backpressure, then the value publishes through the
    /// lock-free ring. The `enqueued` counters are bumped inside the
    /// ring's claimed-slot window (after the gate admitted, before the
    /// publishing sequence store), so the shard thread can never resolve
    /// a request whose admission a snapshot has not seen.
    // me-verify: hot
    fn submit_ring(
        &self,
        rq: &RingQueue,
        pending: Pending,
        has_thread: bool,
    ) -> Result<(), SubmitError> {
        let mut g = rq.gate.load(Ordering::Relaxed);
        loop {
            if g & GATE_CLOSED != 0 {
                ServeStats::bump(&self.stats.rejected_shutdown);
                return Err(SubmitError::ShuttingDown);
            }
            if g & !GATE_CLOSED >= rq.capacity {
                ServeStats::bump(&self.stats.rejected_full);
                me_trace::counter_add("serve.rejected", 1);
                return Err(SubmitError::QueueFull);
            }
            match rq.gate.compare_exchange_weak(g, g + 1, Ordering::Relaxed, Ordering::Relaxed) {
                Ok(_) => break,
                Err(current) => g = current,
            }
        }
        let depth = (g & !GATE_CLOSED) + 1;
        let tenant = pending.tenant;
        if !has_thread {
            // Synchronous fallback shard (spawn failed at startup): the
            // request leaves the logical queue immediately.
            ServeStats::bump(&self.stats.enqueued);
            ServeStats::bump(&self.stats.tenant_slot(tenant).enqueued);
            me_trace::counter_add("serve.enqueued", 1);
            rq.gate.fetch_sub(1, Ordering::Relaxed);
            self.execute_inline(pending);
            return Ok(());
        }
        let stats = &self.stats;
        match rq.ring.push_with(pending, || {
            ServeStats::bump(&stats.enqueued);
            ServeStats::bump(&stats.tenant_slot(tenant).enqueued);
            ServeStats::record_max(&stats.queue_high_water, depth);
        }) {
            Ok(()) => {
                me_trace::counter_add("serve.enqueued", 1);
                me_trace::hist_record("serve.queue_depth", depth);
                rq.wake();
                Ok(())
            }
            Err(_rejected) => {
                // Unreachable by construction: the ring's physical size
                // is ≥ the gate bound and retries never re-enter the
                // ring, so an admitted push always finds a slot. Keep
                // the books balanced anyway (no enqueued bump happened —
                // the hook only runs on a claimed slot).
                rq.gate.fetch_sub(1, Ordering::Relaxed);
                ServeStats::bump(&self.stats.rejected_full);
                me_trace::counter_add("serve.rejected", 1);
                Err(SubmitError::QueueFull)
            }
        }
    }

    /// Execute a request synchronously on the caller's thread (spawn
    /// failed at startup). `max_retries` pins to 0, so `execute_batch`
    /// can never hand back a retry here.
    fn execute_inline(&self, pending: Pending) {
        let ctx = ShardCtx {
            stats: Arc::clone(&self.stats),
            order: Arc::clone(&self.order),
            plan: self.plan,
            width: 1,
            batch_max: 1,
            shed_watermark: usize::MAX,
            max_retries: 0,
            backoff_base: Duration::ZERO,
            tenant_weights: Arc::clone(&self.tenant_weights),
            cache: self.cache.clone(),
        };
        let pool = me_par::WorkerPool::new(1);
        let retries = execute_batch(&ctx, &pool, vec![pending]);
        for p in retries {
            // Defensive: impossible with max_retries = 0, but a dropped
            // Pending would leak an unresolved ticket.
            resolve(&ctx, p, Outcome::Failed("internal: retry on fallback shard".to_string()));
        }
    }

    /// Stop accepting, drain every queue (including pending retries),
    /// resolve everything, and join the shard threads. Returns the final
    /// counter snapshot, on which
    /// [`StatsSnapshot::is_conserved`] must hold.
    pub fn shutdown(mut self) -> StatsSnapshot {
        self.begin_shutdown();
        for handle in self.threads.iter_mut().filter_map(Option::take) {
            let _ = handle.join();
        }
        self.snapshot_with_cache()
    }

    fn begin_shutdown(&self) {
        self.accepting.store(false, Ordering::Release);
        for queue in &self.queues {
            match &**queue {
                ShardQueue::Mutex(mq) => {
                    let mut q = mq.lock();
                    q.shutdown = true;
                    mq.cv.notify_all();
                }
                ShardQueue::Ring(rq) => {
                    rq.gate.fetch_or(GATE_CLOSED, Ordering::Relaxed);
                    // Notify under the park lock: the shard thread
                    // re-checks the closed bit under this same lock
                    // before waiting, so the wakeup cannot be lost.
                    let _guard = rq.park.lock().unwrap_or_else(|e| e.into_inner());
                    rq.cv.notify_all();
                }
            }
        }
    }
}

impl Drop for Scheduler {
    fn drop(&mut self) {
        self.begin_shutdown();
        for handle in self.threads.iter_mut().filter_map(Option::take) {
            let _ = handle.join();
        }
    }
}

impl std::fmt::Debug for Scheduler {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Scheduler")
            .field("queue", &self.queue_kind)
            .field("shards", &self.queues.len())
            .field("pool_width", &self.pool_width)
            .field("tenants", &self.tenant_weights.len())
            .finish()
    }
}

/// Move every due delayed entry into the ready queue, oldest first.
///
/// Entries whose **deadline** has already expired are drained into
/// `dead` instead of being dispatched — the caller resolves them
/// `TimedOut` after releasing any queue lock (ticket slots are never
/// locked under the queue mutex). Before this check, a retried request
/// whose deadline passed mid-backoff would still be promoted and
/// executed dead. Shared by both queue arms (the ring arm's `delayed` /
/// `ready` are consumer-local, so no lock is involved there).
fn promote_due(
    delayed: &mut Vec<Delayed>,
    ready: &mut VecDeque<Pending>,
    now: Instant,
    stats: &ServeStats,
    dead: &mut Vec<Pending>,
) {
    if delayed.is_empty() {
        return;
    }
    let mut i = 0;
    while i < delayed.len() {
        if delayed[i].pending.deadline.is_some_and(|d| d <= now) {
            let d = delayed.swap_remove(i);
            dead.push(d.pending);
        } else {
            i += 1;
        }
    }
    delayed.sort_by_key(|d| (d.ready_at, d.seq));
    while delayed.first().is_some_and(|d| d.ready_at <= now) {
        let d = delayed.remove(0);
        ready.push_back(d.pending);
        ServeStats::record_max(&stats.queue_high_water, ready.len() as u64);
    }
}

/// Deficit-weighted round-robin tenant selection (ring arm only).
///
/// Classic DRR with a per-request cost of 1: each round-robin visit
/// grants a tenant its weight in credit; the first backlogged tenant
/// with positive credit is served, and every admitted request charges
/// one credit to *its own* tenant. Over a saturated window the served
/// ratio converges to the weight ratio regardless of batch size (a
/// tenant that got a big batch goes correspondingly deep into deficit
/// and waits proportionally longer). Banked credit is capped at one
/// weight quantum so an idle tenant cannot burst past its share later,
/// and a sole-backlogged tenant resets all credit (fairness is about
/// contention; there is nothing to arbitrate).
struct FairState {
    weights: Arc<[u64]>,
    deficit: Vec<i64>,
    /// Scratch: which tenants have backlogged work this cycle.
    active: Vec<bool>,
    cursor: usize,
}

impl FairState {
    fn new(weights: Arc<[u64]>) -> FairState {
        let n = weights.len();
        FairState { weights, deficit: vec![0; n], active: vec![false; n], cursor: 0 }
    }

    /// Pick the queue index of the request to serve next, or `None` on
    /// an empty queue. Single-tenant configurations always pick the
    /// head — exactly the legacy FIFO.
    fn select(&mut self, ready: &VecDeque<Pending>) -> Option<usize> {
        if ready.is_empty() {
            return None;
        }
        let t = self.weights.len();
        if t <= 1 {
            return Some(0);
        }
        for a in self.active.iter_mut() {
            *a = false;
        }
        let mut nactive = 0usize;
        for p in ready {
            let s = p.tenant as usize;
            if !self.active[s] {
                self.active[s] = true;
                nactive += 1;
            }
        }
        if nactive == 1 {
            // No contention: serve FIFO and clear banked credit so the
            // idle period does not distort the next contended window.
            for d in self.deficit.iter_mut() {
                *d = 0;
            }
            return Some(0);
        }
        // Deficit round-robin: a tenant keeps the turn while it has both
        // work and unspent credit; the quantum (its weight, in requests)
        // is granted only when the rotation *arrives* at a tenant — so a
        // weight-w tenant is served w requests per cycle, not one.
        loop {
            let i = self.cursor;
            if self.active[i] && self.deficit[i] > 0 {
                return ready.iter().position(|p| p.tenant as usize == i);
            }
            self.cursor = (self.cursor + 1) % t;
            let j = self.cursor;
            if !self.active[j] {
                // An idle tenant's banked credit would distort the next
                // contended window; clear it as the rotation passes.
                self.deficit[j] = 0;
                continue;
            }
            // Cap the bank at one quantum so credit cannot accumulate
            // across cycles the tenant spent unserved.
            self.deficit[j] = (self.deficit[j] + self.weights[j] as i64)
                .min(self.weights[j] as i64);
            if self.deficit[j] > 0 {
                return ready.iter().position(|p| p.tenant as usize == j);
            }
        }
    }

    /// Charge one served request to its tenant.
    fn charge(&mut self, tenant: u32) {
        if self.weights.len() > 1 {
            self.deficit[tenant as usize] -= 1;
        }
    }
}

/// Coalesce a batch out of the local ready queue: fair-select the next
/// request to serve, then collect up to `batch_max` members of its
/// bucket **in full queue order** (requests earlier in the queue that
/// share the bucket ride along — FIFO-per-bucket is preserved exactly as
/// on the mutex arm), charging each admitted request to its own tenant.
fn coalesce_fair(
    fair: &mut FairState,
    ready: &mut VecDeque<Pending>,
    batch_max: usize,
) -> Vec<Pending> {
    let Some(idx) = fair.select(ready) else {
        return Vec::new();
    };
    let key = ready[idx].key;
    let mut batch = Vec::new();
    let mut rest = VecDeque::with_capacity(ready.len());
    for p in ready.drain(..) {
        if batch.len() < batch_max && p.key == key {
            fair.charge(p.tenant);
            batch.push(p);
        } else {
            rest.push_back(p);
        }
    }
    *ready = rest;
    batch
}

/// The mutex-arm shard loop: the original lock-and-wait dequeue path,
/// kept semantically intact as the differential baseline.
fn mutex_shard_loop(ctx: ShardCtx, mq: &MutexQueue) {
    me_trace::register_current_thread();
    let pool = me_par::WorkerPool::new(ctx.width);
    loop {
        let mut shed: Vec<Pending> = Vec::new();
        let mut batch: Vec<Pending> = Vec::new();
        let mut dead: Vec<Pending> = Vec::new();
        {
            let mut q = mq.lock();
            loop {
                let now = Instant::now();
                let qs = &mut *q;
                promote_due(&mut qs.delayed, &mut qs.ready, now, &ctx.stats, &mut dead);
                if !q.ready.is_empty() || !dead.is_empty() {
                    break;
                }
                if q.shutdown && q.delayed.is_empty() {
                    return;
                }
                if let Some(next) = q.delayed.iter().map(|d| d.ready_at).min() {
                    let wait = next
                        .saturating_duration_since(now)
                        .max(Duration::from_micros(50));
                    let (guard, _) =
                        mq.cv.wait_timeout(q, wait).unwrap_or_else(|e| e.into_inner());
                    q = guard;
                } else {
                    q = mq.cv.wait(q).unwrap_or_else(|e| e.into_inner());
                }
            }
            // Drop-head load shedding: beyond the watermark, the oldest
            // requests resolve Shed so queue latency stays bounded.
            while q.ready.len() > ctx.shed_watermark {
                if let Some(p) = q.ready.pop_front() {
                    shed.push(p);
                }
            }
            // Coalesce the head's bucket, preserving FIFO order within
            // the bucket and the relative order of everything skipped.
            if let Some(head) = q.ready.pop_front() {
                let key = head.key;
                batch.push(head);
                if ctx.batch_max > 1 && !q.ready.is_empty() {
                    let mut rest = VecDeque::with_capacity(q.ready.len());
                    while let Some(p) = q.ready.pop_front() {
                        if batch.len() < ctx.batch_max && p.key == key {
                            batch.push(p);
                        } else {
                            rest.push_back(p);
                        }
                    }
                    q.ready = rest;
                }
            }
        }
        for p in dead {
            ServeStats::bump(&ctx.stats.retries_timed_out);
            me_trace::counter_add("serve.retry_timeout", 1);
            resolve(&ctx, p, Outcome::TimedOut);
        }
        for p in shed {
            resolve(&ctx, p, Outcome::Shed);
        }
        if !batch.is_empty() {
            let retries = execute_batch(&ctx, &pool, batch);
            requeue_mutex(&ctx, mq, retries);
        }
        me_trace::flush_thread();
    }
}

/// The ring-arm shard loop. The shard thread is the ring's only
/// consumer: it drains admissions into a consumer-local ready queue (no
/// lock), promotes due retries, fair-selects and coalesces a batch, and
/// parks on the condvar only when there is genuinely nothing to do.
///
/// Exit condition: the gate reads exactly `GATE_CLOSED` (closed, logical
/// depth 0) and the local delayed queue is empty. Depth counts every
/// admission from its gate-CAS until it leaves the queue into a batch /
/// shed / dead set, so an in-flight admission (gate bumped, ring push
/// not yet visible) holds the loop alive — a drained scheduler can never
/// strand a request.
fn ring_shard_loop(ctx: ShardCtx, rq: &RingQueue) {
    me_trace::register_current_thread();
    let pool = me_par::WorkerPool::new(ctx.width);
    let mut ready: VecDeque<Pending> = VecDeque::new();
    let mut delayed: Vec<Delayed> = Vec::new();
    let mut delay_seq: u64 = 0;
    let mut fair = FairState::new(Arc::clone(&ctx.tenant_weights));
    loop {
        while let Some(p) = rq.ring.pop() {
            ready.push_back(p);
        }
        let mut dead: Vec<Pending> = Vec::new();
        let now = Instant::now();
        promote_due(&mut delayed, &mut ready, now, &ctx.stats, &mut dead);
        if ready.is_empty() && dead.is_empty() {
            if rq.gate.load(Ordering::Relaxed) == GATE_CLOSED && delayed.is_empty() {
                return;
            }
            // Idle edge. Dekker handshake with producers: publish the
            // intent to park, fence, then re-check the ring — either a
            // racing producer's post-publish fence sees `parked` and
            // takes the park lock to notify, or our re-check sees its
            // item and we back out.
            rq.parked.store(true, Ordering::Relaxed);
            fence(Ordering::SeqCst);
            if !rq.ring.is_empty() {
                rq.parked.store(false, Ordering::Relaxed);
                continue;
            }
            {
                let guard = rq.park.lock().unwrap_or_else(|e| e.into_inner());
                // Re-check under the lock: producers and shutdown notify
                // while holding it, so a wakeup between our pre-lock
                // check and the wait cannot be lost.
                let closed = rq.gate.load(Ordering::Relaxed) & GATE_CLOSED != 0;
                if rq.ring.is_empty() && !(closed && delayed.is_empty()) {
                    if let Some(next) = delayed.iter().map(|d| d.ready_at).min() {
                        let wait = next
                            .saturating_duration_since(Instant::now())
                            .max(Duration::from_micros(50));
                        let _ = rq.cv.wait_timeout(guard, wait).unwrap_or_else(|e| e.into_inner());
                    } else {
                        drop(rq.cv.wait(guard).unwrap_or_else(|e| e.into_inner()));
                    }
                }
            }
            rq.parked.store(false, Ordering::Relaxed);
            continue;
        }
        // Drop-head load shedding, same watermark semantics as the
        // mutex arm.
        let mut shed: Vec<Pending> = Vec::new();
        while ready.len() > ctx.shed_watermark {
            if let Some(p) = ready.pop_front() {
                shed.push(p);
            }
        }
        let batch = coalesce_fair(&mut fair, &mut ready, ctx.batch_max);
        // Everything resolved or handed to execution has left the
        // logical queue; free its admission-gate depth in one step.
        let leaving = (dead.len() + shed.len() + batch.len()) as u64;
        if leaving > 0 {
            rq.gate.fetch_sub(leaving, Ordering::Relaxed);
        }
        for p in dead {
            ServeStats::bump(&ctx.stats.retries_timed_out);
            me_trace::counter_add("serve.retry_timeout", 1);
            resolve(&ctx, p, Outcome::TimedOut);
        }
        for p in shed {
            resolve(&ctx, p, Outcome::Shed);
        }
        if !batch.is_empty() {
            let retries = execute_batch(&ctx, &pool, batch);
            requeue_ring(&ctx, rq, &mut delayed, &mut delay_seq, retries);
        }
        me_trace::flush_thread();
    }
}

/// Compute a retry's wakeup instant; `None` when the deadline expires
/// within (or before) the backoff window — the caller resolves it
/// `TimedOut` instead of waiting out a pointless backoff.
fn retry_schedule(ctx: &ShardCtx, pending: &Pending, now: Instant) -> Option<Instant> {
    let exp = (pending.attempt.saturating_sub(1)).min(BACKOFF_EXP_CAP);
    // `checked_shl` + the compile-time cap assert: a future
    // BACKOFF_EXP_CAP bump can never wrap the multiplier to a silent
    // zero backoff; saturate to the 1 s ceiling instead.
    let backoff = 1u32
        .checked_shl(exp)
        .and_then(|mult| ctx.backoff_base.checked_mul(mult))
        .unwrap_or(Duration::from_secs(1));
    let ready_at = now + backoff;
    if pending.deadline.is_some_and(|d| ready_at >= d) {
        None
    } else {
        Some(ready_at)
    }
}

/// Requeue retries on the mutex arm (under the queue lock; dead-on-
/// requeue requests resolve after it drops — ticket slots are never
/// locked under the queue mutex).
fn requeue_mutex(ctx: &ShardCtx, mq: &MutexQueue, retries: Vec<Pending>) {
    if retries.is_empty() {
        return;
    }
    let mut dead: Vec<Pending> = Vec::new();
    {
        let mut q = mq.lock();
        let now = Instant::now();
        for pending in retries {
            match retry_schedule(ctx, &pending, now) {
                None => {
                    ServeStats::bump(&ctx.stats.retries_timed_out);
                    me_trace::counter_add("serve.retry_timeout", 1);
                    dead.push(pending);
                }
                Some(ready_at) => {
                    ServeStats::bump(&ctx.stats.retries);
                    me_trace::counter_add("serve.retry", 1);
                    let seq = q.delay_seq;
                    q.delay_seq += 1;
                    q.delayed.push(Delayed { ready_at, seq, pending });
                }
            }
        }
        mq.cv.notify_all();
    }
    for pending in dead {
        resolve(ctx, pending, Outcome::TimedOut);
    }
}

/// Requeue retries on the ring arm: the delayed queue is consumer-local,
/// so no lock — but each re-entering request re-claims admission-gate
/// depth (retries re-enter above the capacity bound, exactly like the
/// mutex arm's `ready + delayed` accounting).
fn requeue_ring(
    ctx: &ShardCtx,
    rq: &RingQueue,
    delayed: &mut Vec<Delayed>,
    delay_seq: &mut u64,
    retries: Vec<Pending>,
) {
    let now = Instant::now();
    for pending in retries {
        match retry_schedule(ctx, &pending, now) {
            None => {
                ServeStats::bump(&ctx.stats.retries_timed_out);
                me_trace::counter_add("serve.retry_timeout", 1);
                resolve(ctx, pending, Outcome::TimedOut);
            }
            Some(ready_at) => {
                ServeStats::bump(&ctx.stats.retries);
                me_trace::counter_add("serve.retry", 1);
                rq.gate.fetch_add(1, Ordering::Relaxed);
                let seq = *delay_seq;
                *delay_seq += 1;
                delayed.push(Delayed { ready_at, seq, pending });
            }
        }
    }
}

/// Result of one execution attempt.
enum ExecResult {
    Done(Mat<f64>),
    Transient,
    Panicked(String),
}

/// One batch member during execution.
struct Slot {
    pending: Pending,
    /// `None` while runnable; `Some` once a terminal outcome is known
    /// before/without execution (forced timeout, expired deadline).
    pre: Option<Outcome>,
    result: Option<ExecResult>,
}

fn describe_panic(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        format!("job panicked: {s}")
    } else if let Some(s) = payload.downcast_ref::<String>() {
        format!("job panicked: {s}")
    } else {
        "job panicked".to_string()
    }
}

/// Execute one coalesced batch and resolve every member in FIFO order.
/// Members that failed transiently and still have retry budget are
/// returned to the caller for arm-specific requeueing (their `attempt`
/// already incremented).
fn execute_batch(ctx: &ShardCtx, pool: &me_par::WorkerPool, batch: Vec<Pending>) -> Vec<Pending> {
    let _b = me_trace::span("serve.batch", "serve");
    ServeStats::bump(&ctx.stats.batches);
    ctx.stats
        .batched_requests
        .fetch_add(batch.len() as u64, Ordering::Relaxed);
    ServeStats::record_max(&ctx.stats.max_batch, batch.len() as u64);
    me_trace::hist_record("serve.batch_size", batch.len() as u64);

    // Dequeue stage: forced timeouts, injected delays, expired deadlines.
    let now = Instant::now();
    let mut slots: Vec<Slot> = batch
        .into_iter()
        .map(|pending| {
            let mut pre = None;
            if let Some(plan) = &ctx.plan {
                match plan.decide(FaultStage::Dequeue, pending.id, pending.attempt) {
                    Fault::ForceTimeout => pre = Some(Outcome::TimedOut),
                    fault => FaultPlan::apply_delay(fault),
                }
            }
            if pre.is_none() && pending.deadline.is_some_and(|d| d <= now) {
                pre = Some(Outcome::TimedOut);
            }
            Slot { pending, pre, result: None }
        })
        .collect();

    let stackable = matches!(slots.first().map(|s| &s.pending.key), Some(BucketKey::Gemm { .. }));
    let runnable = slots.iter().filter(|s| s.pre.is_none()).count();
    if runnable > 0 {
        if stackable && runnable > 1 {
            execute_stacked_gemm(ctx, pool, &mut slots);
        } else {
            execute_fan_out(ctx, pool, &mut slots);
        }
    }

    // Resolution, FIFO within the batch; transient failures with budget
    // left go back to the caller for requeueing.
    let mut retries: Vec<Pending> = Vec::new();
    let now = Instant::now();
    for slot in slots {
        let Slot { mut pending, pre, result } = slot;
        let outcome = if let Some(outcome) = pre {
            outcome
        } else {
            match result {
                Some(ExecResult::Done(c)) => {
                    pending.attempt += 1;
                    if pending.deadline.is_some_and(|d| d <= now) {
                        Outcome::TimedOut
                    } else {
                        Outcome::Ok(c)
                    }
                }
                Some(ExecResult::Transient) => {
                    pending.attempt += 1;
                    if pending.attempt <= ctx.max_retries {
                        retries.push(pending);
                        continue;
                    }
                    Outcome::Failed(format!(
                        "transient failure persisted through {} attempts",
                        pending.attempt
                    ))
                }
                Some(ExecResult::Panicked(msg)) => {
                    pending.attempt += 1;
                    Outcome::Failed(msg)
                }
                // Defensive: a runnable slot the executor skipped would
                // be a scheduler bug; fail it loudly rather than lose it.
                None => Outcome::Failed("internal: request was never executed".to_string()),
            }
        };
        resolve(ctx, pending, outcome);
    }
    retries
}

/// Decide the execute-stage fault for a slot.
fn execute_fault(ctx: &ShardCtx, pending: &Pending) -> Fault {
    match &ctx.plan {
        Some(plan) => plan.decide(FaultStage::Execute, pending.id, pending.attempt),
        None => Fault::None,
    }
}

/// Row-stacked execution of a shared-B GEMM bucket: one big GEMM on the
/// pool, then per-request row extraction. Injected panics/failures are
/// screened per request *before* stacking so they fail only their own
/// handle; a genuine panic inside the stacked GEMM fails every stacked
/// member (never the shard).
fn execute_stacked_gemm(ctx: &ShardCtx, pool: &me_par::WorkerPool, slots: &mut [Slot]) {
    let _s = me_trace::span("serve.exec_stacked", "serve");
    let mut members: Vec<usize> = Vec::with_capacity(slots.len());
    for (i, slot) in slots.iter_mut().enumerate() {
        if slot.pre.is_some() {
            continue;
        }
        match execute_fault(ctx, &slot.pending) {
            Fault::Panic => slot.result = Some(ExecResult::Panicked(INJECTED_PANIC.to_string())),
            Fault::Transient => slot.result = Some(ExecResult::Transient),
            fault => {
                FaultPlan::apply_delay(fault);
                members.push(i);
            }
        }
    }
    if members.is_empty() {
        return;
    }
    // All members share (B, k, n, alpha, variant) by bucket construction.
    let JobKind::Gemm(first) = &slots[members[0]].pending.job else {
        // A non-GEMM job can never carry a Gemm bucket key; treat it as a
        // failed member rather than poisoning the batch.
        slots[members[0]].result =
            Some(ExecResult::Panicked("internal: non-GEMM job in GEMM bucket".to_string()));
        return;
    };
    let variant = first.variant;
    let alpha = first.alpha;
    let b = Arc::clone(&first.b);
    let key = slots[members[0]].pending.key;
    let (k, n) = (b.rows(), b.cols());
    let total_m: usize = members
        .iter()
        .map(|&i| match &slots[i].pending.job {
            JobKind::Gemm(g) => g.a.rows(),
            JobKind::Ozaki(_) => 0,
        })
        .sum();
    ctx.stats.stacked_rows.fetch_add(total_m as u64, Ordering::Relaxed);
    let mut a_stack = Mat::<f64>::zeros(total_m, k);
    let mut r0 = 0usize;
    let mut offsets: Vec<(usize, usize)> = Vec::with_capacity(members.len());
    for &i in &members {
        if let JobKind::Gemm(g) = &slots[i].pending.job {
            let m = g.a.rows();
            for r in 0..m {
                a_stack.row_mut(r0 + r).copy_from_slice(g.a.row(r));
            }
            offsets.push((r0, m));
            r0 += m;
        }
    }
    let mut c_stack = Mat::<f64>::zeros(total_m, n);
    // Weight-cache fast path: fetch (or pack exactly once) the prepacked
    // B panels for this bucket. Bitwise-identical to the fresh-pack call
    // below — same pack routine, same kc grid (validated on lookup).
    let packed: Option<Arc<PackedB<f64>>> =
        ctx.cache.as_ref().map(|wc| wc.get_or_pack(key, &b, variant));
    let run = catch_unwind(AssertUnwindSafe(|| match &packed {
        Some(p) => gemm_parallel_on_prepacked_with(pool, variant, alpha, &a_stack, p, 0.0, &mut c_stack),
        None => gemm_parallel_on_with(pool, variant, alpha, &a_stack, &b, 0.0, &mut c_stack),
    }));
    match run {
        Ok(()) => {
            for (&i, &(r0, m)) in members.iter().zip(&offsets) {
                let data = c_stack.as_slice()[r0 * n..(r0 + m) * n].to_vec();
                slots[i].result = Some(ExecResult::Done(Mat::from_vec(m, n, data)));
            }
        }
        Err(payload) => {
            let msg = describe_panic(payload.as_ref());
            for &i in &members {
                slots[i].result = Some(ExecResult::Panicked(msg.clone()));
            }
        }
    }
}

/// Run one slot's attempt with its decided fault, isolated by
/// `catch_unwind` so a panic — injected or genuine — fails only this
/// slot.
// me-verify: hot
fn attempt_one(
    job: &JobKind,
    key: BucketKey,
    cache: Option<&WeightCache>,
    fault: Fault,
    pool: &me_par::WorkerPool,
    use_pool: bool,
) -> ExecResult {
    let run = catch_unwind(AssertUnwindSafe(|| {
        if fault == Fault::Panic {
            std::panic::panic_any(INJECTED_PANIC);
        }
        FaultPlan::apply_delay(fault);
        if fault == Fault::Transient {
            return None;
        }
        Some(run_one(job, key, cache, pool, use_pool))
    }));
    match run {
        Ok(Some(c)) => ExecResult::Done(c),
        Ok(None) => ExecResult::Transient,
        Err(payload) => ExecResult::Panicked(describe_panic(payload.as_ref())),
    }
}

/// Per-request execution fanned over the shard's pool (Ozaki buckets and
/// singleton GEMM batches). A batch with exactly one runnable member runs
/// it on the shard thread with the whole pool at its disposal; larger
/// fan-outs run one serial request per pool lane.
fn execute_fan_out(ctx: &ShardCtx, pool: &me_par::WorkerPool, slots: &mut [Slot]) {
    let runnable: Vec<usize> = slots
        .iter()
        .enumerate()
        .filter(|(_, s)| s.pre.is_none())
        .map(|(i, _)| i)
        .collect();
    let cache = ctx.cache.as_deref();
    if let [only] = runnable[..] {
        let fault = execute_fault(ctx, &slots[only].pending);
        let key = slots[only].pending.key;
        slots[only].result = Some(attempt_one(&slots[only].pending.job, key, cache, fault, pool, true));
        return;
    }
    let mut work: Vec<(&Pending, &mut Option<ExecResult>, Fault)> = Vec::new();
    for slot in slots.iter_mut() {
        if slot.pre.is_some() {
            continue;
        }
        let fault = execute_fault(ctx, &slot.pending);
        work.push((&slot.pending, &mut slot.result, fault));
    }
    pool.for_each_mut_tagged("serve.exec", &mut work, |_, item| {
        let (pending, result, fault) = item;
        **result = Some(attempt_one(&pending.job, pending.key, cache, *fault, pool, false));
    });
}

/// Compute one request. A batch with a single runnable member may use the
/// whole pool for it (`use_pool` — the fan-out is trivially this one job,
/// run inline by `for_each_mut`, so the pool is free); members of a
/// multi-request fan-out run serial, one request per pool lane.
// me-verify: hot
fn run_one(
    job: &JobKind,
    key: BucketKey,
    cache: Option<&WeightCache>,
    pool: &me_par::WorkerPool,
    use_pool: bool,
) -> Mat<f64> {
    match job {
        JobKind::Gemm(g) => {
            let mut c = Mat::zeros(g.a.rows(), g.b.cols());
            let packed = cache.map(|wc| wc.get_or_pack(key, &g.b, g.variant));
            match (&packed, use_pool) {
                (Some(p), true) => {
                    gemm_parallel_on_prepacked_with(pool, g.variant, g.alpha, &g.a, p, 0.0, &mut c)
                }
                (Some(p), false) => {
                    gemm_tiled_prepacked_with(g.variant, g.alpha, &g.a, p, 0.0, &mut c)
                }
                (None, true) => {
                    gemm_parallel_on_with(pool, g.variant, g.alpha, &g.a, &g.b, 0.0, &mut c)
                }
                (None, false) => gemm_tiled_with(g.variant, g.alpha, &g.a, &g.b, 0.0, &mut c),
            }
            c
        }
        JobKind::Ozaki(o) => ozaki_gemm(&o.a, &o.b, &o.cfg).c,
    }
}

/// Resolve one ticket with its terminal outcome, stamping the global
/// resolution order and the submission→resolution latency. Double
/// resolutions are counted, never overwritten. Outcome counters bump
/// `Release` (total and per-tenant) so snapshots stay coherent — see the
/// stats.rs ordering contract.
// me-verify: hot
fn resolve(ctx: &ShardCtx, pending: Pending, outcome: Outcome) {
    let tenant = ctx.stats.tenant_slot(pending.tenant);
    let (stat, tstat, counter): (&AtomicU64, &AtomicU64, &'static str) = match &outcome {
        Outcome::Ok(_) => (&ctx.stats.completed_ok, &tenant.completed_ok, "serve.completed"),
        Outcome::TimedOut => (&ctx.stats.timed_out, &tenant.timed_out, "serve.timeout"),
        Outcome::Shed => (&ctx.stats.shed, &tenant.shed, "serve.shed"),
        Outcome::Failed(_) => (&ctx.stats.failed, &tenant.failed, "serve.failed"),
    };
    let latency_ns = pending.submitted.elapsed().as_nanos() as u64;
    ctx.stats.latency.record(latency_ns);
    me_trace::hist_record("serve.latency_ns", latency_ns);
    ServeStats::bump_outcome(tstat);
    ServeStats::bump_outcome(stat);
    me_trace::counter_add(counter, 1);
    let order = ctx.order.fetch_add(1, Ordering::Relaxed);
    let completion = Completion { outcome, order, attempts: pending.attempt };
    if !pending.ticket.resolve(completion) {
        ServeStats::bump(&ctx.stats.double_resolves);
        me_trace::counter_add("serve.double_resolve", 1);
    }
}
