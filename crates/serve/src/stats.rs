//! Conservation counters, per-tenant accounting, and latency percentiles
//! for the scheduler.
//!
//! Every accepted submission increments `enqueued`; every resolution
//! increments exactly one of `completed_ok` / `timed_out` / `shed` /
//! `failed`. After a drain the books must balance:
//! `enqueued == completed_ok + timed_out + shed + failed` — the property
//! the fault-injection and stress suites assert over thousands of seeded
//! schedules. The counters are plain atomics (no locks on the hot path)
//! and are independent of the `trace` feature, so the invariants hold and
//! are checkable under `--no-default-features` too.
//!
//! ## Memory-ordering contract (per field)
//!
//! With the lock-free ring arm there is no queue mutex to order counter
//! traffic, so every snapshot read races live bumps. The orderings below
//! are chosen so a *point-in-time* [`StatsSnapshot`] is still internally
//! coherent — specifically `resolved() ≤ enqueued` always holds, and
//! successive snapshots never decrease (the monotonicity suite):
//!
//! | field(s)                                   | bump              | snapshot load | why |
//! |--------------------------------------------|-------------------|---------------|-----|
//! | `completed_ok`,`timed_out`,`shed`,`failed` | `Release`         | `Acquire`     | the resolving thread observed the request's admission (ring slot `Acquire` / queue-mutex lock), so an `Acquire` read of the outcome makes the matching `enqueued` bump visible to loads that follow |
//! | `enqueued` (total and per-tenant)          | `Relaxed`¹        | `Relaxed`²    | ¹ bumped strictly before the request becomes consumable (inside the ring publish window / under the queue mutex); ² loaded *after* the outcome `Acquire`s, so it can never lag them |
//! | everything else (diagnostics)              | `Relaxed`         | `Relaxed`     | monotone counters with no cross-field invariant tighter than "snapshot of a monotone counter" |
//!
//! The latency histogram's buckets are `Relaxed`; a snapshot rebuilds
//! `count` as the sum of the bucket reads, so the derived
//! [`me_trace::Histogram`] is consistent by construction even if it
//! straddles concurrent records.

use std::sync::atomic::{AtomicU64, Ordering};

use me_trace::{Histogram, HIST_BUCKETS};

/// Lock-free log2 latency histogram (same bucketing rule as
/// [`me_trace::Histogram`], shared via [`Histogram::bucket_index`]), kept
/// in `ServeStats` so percentiles work under `--no-default-features`
/// where the me-trace collector is a no-op.
#[derive(Debug)]
pub(crate) struct AtomicHistogram {
    sum: AtomicU64,
    buckets: [AtomicU64; HIST_BUCKETS],
}

impl Default for AtomicHistogram {
    fn default() -> Self {
        AtomicHistogram {
            sum: AtomicU64::new(0),
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }
}

impl AtomicHistogram {
    /// Record one value (Relaxed: diagnostics, no cross-field invariant).
    // me-verify: hot
    pub(crate) fn record(&self, value: u64) {
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.buckets[Histogram::bucket_index(value)].fetch_add(1, Ordering::Relaxed);
    }

    /// Materialize a consistent [`Histogram`]: `count` is derived from
    /// the bucket reads, so `is_consistent()` holds even mid-record.
    pub(crate) fn to_histogram(&self) -> Histogram {
        let mut h = Histogram::default();
        for (dst, src) in h.buckets.iter_mut().zip(&self.buckets) {
            *dst = src.load(Ordering::Relaxed);
        }
        h.count = h.buckets.iter().sum();
        h.sum = u128::from(self.sum.load(Ordering::Relaxed));
        h
    }
}

/// Per-tenant conservation counters (one slot per configured tenant
/// weight; tenant ids map to slots modulo the tenant count).
#[derive(Debug, Default)]
pub(crate) struct TenantCounters {
    pub(crate) enqueued: AtomicU64,
    pub(crate) completed_ok: AtomicU64,
    pub(crate) timed_out: AtomicU64,
    pub(crate) shed: AtomicU64,
    pub(crate) failed: AtomicU64,
}

/// Live counters, shared between the submitter-side API and the shard
/// threads. See the module docs for the per-field ordering contract.
#[derive(Debug)]
pub(crate) struct ServeStats {
    pub(crate) enqueued: AtomicU64,
    pub(crate) completed_ok: AtomicU64,
    pub(crate) timed_out: AtomicU64,
    pub(crate) shed: AtomicU64,
    pub(crate) failed: AtomicU64,
    pub(crate) rejected_full: AtomicU64,
    pub(crate) rejected_shutdown: AtomicU64,
    pub(crate) retries: AtomicU64,
    pub(crate) retries_timed_out: AtomicU64,
    pub(crate) batches: AtomicU64,
    pub(crate) batched_requests: AtomicU64,
    pub(crate) stacked_rows: AtomicU64,
    pub(crate) max_batch: AtomicU64,
    pub(crate) queue_high_water: AtomicU64,
    pub(crate) double_resolves: AtomicU64,
    /// Submission→resolution latency in nanoseconds, log2-bucketed.
    pub(crate) latency: AtomicHistogram,
    /// One slot per configured tenant (always ≥ 1).
    pub(crate) tenants: Vec<TenantCounters>,
}

impl Default for ServeStats {
    fn default() -> Self {
        ServeStats::new(1)
    }
}

impl ServeStats {
    /// Build the counter block with `tenants` per-tenant slots (min 1).
    pub(crate) fn new(tenants: usize) -> ServeStats {
        ServeStats {
            enqueued: AtomicU64::new(0),
            completed_ok: AtomicU64::new(0),
            timed_out: AtomicU64::new(0),
            shed: AtomicU64::new(0),
            failed: AtomicU64::new(0),
            rejected_full: AtomicU64::new(0),
            rejected_shutdown: AtomicU64::new(0),
            retries: AtomicU64::new(0),
            retries_timed_out: AtomicU64::new(0),
            batches: AtomicU64::new(0),
            batched_requests: AtomicU64::new(0),
            stacked_rows: AtomicU64::new(0),
            max_batch: AtomicU64::new(0),
            queue_high_water: AtomicU64::new(0),
            double_resolves: AtomicU64::new(0),
            latency: AtomicHistogram::default(),
            tenants: (0..tenants.max(1)).map(|_| TenantCounters::default()).collect(),
        }
    }

    /// Relaxed bump for diagnostics and admission-side counters (the
    /// admission counters get their ordering from the publish they
    /// precede — ring slot release / queue-mutex unlock).
    // me-verify: hot
    pub(crate) fn bump(counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }

    /// Release bump for terminal-outcome counters: pairs with the
    /// `Acquire` loads in [`ServeStats::snapshot`] so any snapshot that
    /// sees the resolution also sees its admission.
    // me-verify: hot
    pub(crate) fn bump_outcome(counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Release);
    }

    pub(crate) fn record_max(counter: &AtomicU64, value: u64) {
        counter.fetch_max(value, Ordering::Relaxed);
    }

    /// Map a tenant id to its counter slot.
    pub(crate) fn tenant_slot(&self, tenant: u32) -> &TenantCounters {
        &self.tenants[tenant as usize % self.tenants.len()]
    }

    /// Point-in-time snapshot. Outcome counters are loaded first with
    /// `Acquire` (totals, then per-tenant), *then* the admission and
    /// diagnostic counters — the load order that makes
    /// `resolved() ≤ enqueued` hold in every snapshot (module docs).
    pub(crate) fn snapshot(&self) -> StatsSnapshot {
        let completed_ok = self.completed_ok.load(Ordering::Acquire);
        let timed_out = self.timed_out.load(Ordering::Acquire);
        let shed = self.shed.load(Ordering::Acquire);
        let failed = self.failed.load(Ordering::Acquire);
        let latency = self.latency.to_histogram();
        StatsSnapshot {
            completed_ok,
            timed_out,
            shed,
            failed,
            enqueued: self.enqueued.load(Ordering::Relaxed),
            rejected_full: self.rejected_full.load(Ordering::Relaxed),
            rejected_shutdown: self.rejected_shutdown.load(Ordering::Relaxed),
            retries: self.retries.load(Ordering::Relaxed),
            retries_timed_out: self.retries_timed_out.load(Ordering::Relaxed),
            batches: self.batches.load(Ordering::Relaxed),
            batched_requests: self.batched_requests.load(Ordering::Relaxed),
            stacked_rows: self.stacked_rows.load(Ordering::Relaxed),
            max_batch: self.max_batch.load(Ordering::Relaxed),
            queue_high_water: self.queue_high_water.load(Ordering::Relaxed),
            double_resolves: self.double_resolves.load(Ordering::Relaxed),
            latency_count: latency.count,
            p50_ns: latency.quantile(0.50),
            p95_ns: latency.quantile(0.95),
            p99_ns: latency.quantile(0.99),
            cache_hits: 0,
            cache_misses: 0,
            cache_evictions: 0,
            cache_pack_bytes_saved: 0,
        }
    }

    /// Per-tenant snapshots, same load-order contract as
    /// [`ServeStats::snapshot`] within each slot.
    pub(crate) fn tenant_snapshots(&self) -> Vec<TenantSnapshot> {
        self.tenants
            .iter()
            .enumerate()
            .map(|(i, t)| {
                let completed_ok = t.completed_ok.load(Ordering::Acquire);
                let timed_out = t.timed_out.load(Ordering::Acquire);
                let shed = t.shed.load(Ordering::Acquire);
                let failed = t.failed.load(Ordering::Acquire);
                TenantSnapshot {
                    tenant: i as u32,
                    completed_ok,
                    timed_out,
                    shed,
                    failed,
                    enqueued: t.enqueued.load(Ordering::Relaxed),
                }
            })
            .collect()
    }

    /// The full latency histogram (for exporters and SLO calibration).
    pub(crate) fn latency_histogram(&self) -> Histogram {
        self.latency.to_histogram()
    }
}

/// A point-in-time copy of the scheduler's counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StatsSnapshot {
    /// Accepted submissions (tickets issued).
    pub enqueued: u64,
    /// Requests resolved `Ok`.
    pub completed_ok: u64,
    /// Requests resolved `TimedOut`.
    pub timed_out: u64,
    /// Requests resolved `Shed`.
    pub shed: u64,
    /// Requests resolved `Failed`.
    pub failed: u64,
    /// Submissions rejected with `QueueFull` (no ticket issued).
    pub rejected_full: u64,
    /// Submissions rejected with `ShuttingDown` (no ticket issued).
    pub rejected_shutdown: u64,
    /// Re-enqueues after a transient failure.
    pub retries: u64,
    /// Retried requests resolved `TimedOut` without another execution
    /// because their deadline fell within (or before) the backoff window
    /// — at requeue time or while waiting in the delayed queue. Counted
    /// inside `timed_out` for conservation; this is the diagnostic split.
    pub retries_timed_out: u64,
    /// Batched executions run.
    pub batches: u64,
    /// Requests that went through a batched execution.
    pub batched_requests: u64,
    /// Total A-rows executed through the row-stacked GEMM path.
    pub stacked_rows: u64,
    /// Largest batch coalesced.
    pub max_batch: u64,
    /// Highest ready-queue depth observed on any shard.
    pub queue_high_water: u64,
    /// Resolutions that found their ticket already resolved. Always 0 in
    /// a correct scheduler; the exactly-once suites assert it.
    pub double_resolves: u64,
    /// Requests with a recorded submission→resolution latency (equals
    /// `resolved()` modulo in-flight records).
    pub latency_count: u64,
    /// p50 submission→resolution latency in ns (log2-bucket upper bound;
    /// ≥ the exact sample quantile by less than one bucket width).
    pub p50_ns: u64,
    /// p95 latency in ns (same bucket-bound convention).
    pub p95_ns: u64,
    /// p99 latency in ns (same bucket-bound convention).
    pub p99_ns: u64,
    /// Weight-cache lookups served from a live prepacked entry (0 when
    /// the cache is disabled).
    pub cache_hits: u64,
    /// Weight-cache lookups that had to pack B (cold key, stale blocking,
    /// or a lost insert race). `cache_hits + cache_misses` equals the
    /// number of cache lookups.
    pub cache_misses: u64,
    /// Weight-cache entries evicted (LRU capacity pressure or a blocking
    /// change invalidation).
    pub cache_evictions: u64,
    /// Packed-B bytes that did not have to be rebuilt thanks to cache
    /// hits — the repack work the cache saved.
    pub cache_pack_bytes_saved: u64,
}

impl StatsSnapshot {
    /// Requests resolved so far, over all terminal outcomes.
    pub fn resolved(&self) -> u64 {
        self.completed_ok + self.timed_out + self.shed + self.failed
    }

    /// The conservation invariant: every accepted request has resolved
    /// exactly once (call after a drain).
    pub fn is_conserved(&self) -> bool {
        self.enqueued == self.resolved() && self.double_resolves == 0
    }
}

/// A point-in-time copy of one tenant's conservation counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TenantSnapshot {
    /// Tenant slot index (tenant ids map in modulo the slot count).
    pub tenant: u32,
    /// Accepted submissions for this tenant.
    pub enqueued: u64,
    /// Requests resolved `Ok`.
    pub completed_ok: u64,
    /// Requests resolved `TimedOut`.
    pub timed_out: u64,
    /// Requests resolved `Shed`.
    pub shed: u64,
    /// Requests resolved `Failed`.
    pub failed: u64,
}

impl TenantSnapshot {
    /// Requests resolved so far for this tenant.
    pub fn resolved(&self) -> u64 {
        self.completed_ok + self.timed_out + self.shed + self.failed
    }

    /// Per-tenant conservation (call after a drain).
    pub fn is_conserved(&self) -> bool {
        self.enqueued == self.resolved()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conservation_balances() {
        let s = ServeStats::default();
        for _ in 0..5 {
            ServeStats::bump(&s.enqueued);
        }
        ServeStats::bump_outcome(&s.completed_ok);
        ServeStats::bump_outcome(&s.timed_out);
        ServeStats::bump_outcome(&s.shed);
        ServeStats::bump_outcome(&s.failed);
        assert!(!s.snapshot().is_conserved(), "one request still open");
        ServeStats::bump_outcome(&s.completed_ok);
        let snap = s.snapshot();
        assert_eq!(snap.resolved(), 5);
        assert!(snap.is_conserved());
    }

    #[test]
    fn high_water_is_a_max() {
        let s = ServeStats::default();
        for depth in [3u64, 9, 1, 7] {
            ServeStats::record_max(&s.queue_high_water, depth);
        }
        assert_eq!(s.snapshot().queue_high_water, 9);
    }

    #[test]
    fn double_resolves_break_conservation() {
        let s = ServeStats::default();
        ServeStats::bump(&s.enqueued);
        ServeStats::bump_outcome(&s.completed_ok);
        ServeStats::bump(&s.double_resolves);
        assert!(!s.snapshot().is_conserved());
    }

    #[test]
    fn latency_percentiles_come_from_the_histogram() {
        let s = ServeStats::default();
        for v in [100u64, 200, 400, 800, 100_000] {
            s.latency.record(v);
        }
        let snap = s.snapshot();
        assert_eq!(snap.latency_count, 5);
        assert!(snap.p50_ns <= snap.p95_ns && snap.p95_ns <= snap.p99_ns);
        // p99 → rank 5 → 100_000 lives in bucket 17 (bound 131071).
        assert_eq!(snap.p99_ns, (1 << 17) - 1);
        // p50 → rank 3 → 400, bucket 9 (bound 511).
        assert_eq!(snap.p50_ns, 511);
    }

    #[test]
    fn tenant_slots_wrap_modulo() {
        let s = ServeStats::new(3);
        ServeStats::bump(&s.tenant_slot(0).enqueued);
        ServeStats::bump(&s.tenant_slot(3).enqueued);
        ServeStats::bump(&s.tenant_slot(5).enqueued);
        let snaps = s.tenant_snapshots();
        assert_eq!(snaps.len(), 3);
        assert_eq!(snaps[0].enqueued, 2, "tenants 0 and 3 share slot 0");
        assert_eq!(snaps[2].enqueued, 1);
        assert!(snaps[1].is_conserved(), "empty slot is trivially conserved");
    }
}
