//! Conservation counters for the scheduler.
//!
//! Every accepted submission increments `enqueued`; every resolution
//! increments exactly one of `completed_ok` / `timed_out` / `shed` /
//! `failed`. After a drain the books must balance:
//! `enqueued == completed_ok + timed_out + shed + failed` — the property
//! the fault-injection and stress suites assert over thousands of seeded
//! schedules. The counters are plain atomics (no locks on the hot path)
//! and are independent of `me-trace`, so the invariants hold and are
//! checkable under `--no-default-features` too.

use std::sync::atomic::{AtomicU64, Ordering};

/// Live counters, shared between the submitter-side API and the shard
/// threads.
#[derive(Debug, Default)]
pub(crate) struct ServeStats {
    pub(crate) enqueued: AtomicU64,
    pub(crate) completed_ok: AtomicU64,
    pub(crate) timed_out: AtomicU64,
    pub(crate) shed: AtomicU64,
    pub(crate) failed: AtomicU64,
    pub(crate) rejected_full: AtomicU64,
    pub(crate) rejected_shutdown: AtomicU64,
    pub(crate) retries: AtomicU64,
    pub(crate) retries_timed_out: AtomicU64,
    pub(crate) batches: AtomicU64,
    pub(crate) batched_requests: AtomicU64,
    pub(crate) stacked_rows: AtomicU64,
    pub(crate) max_batch: AtomicU64,
    pub(crate) queue_high_water: AtomicU64,
    pub(crate) double_resolves: AtomicU64,
}

impl ServeStats {
    pub(crate) fn bump(counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_max(counter: &AtomicU64, value: u64) {
        counter.fetch_max(value, Ordering::Relaxed);
    }

    pub(crate) fn snapshot(&self) -> StatsSnapshot {
        StatsSnapshot {
            enqueued: self.enqueued.load(Ordering::Relaxed),
            completed_ok: self.completed_ok.load(Ordering::Relaxed),
            timed_out: self.timed_out.load(Ordering::Relaxed),
            shed: self.shed.load(Ordering::Relaxed),
            failed: self.failed.load(Ordering::Relaxed),
            rejected_full: self.rejected_full.load(Ordering::Relaxed),
            rejected_shutdown: self.rejected_shutdown.load(Ordering::Relaxed),
            retries: self.retries.load(Ordering::Relaxed),
            retries_timed_out: self.retries_timed_out.load(Ordering::Relaxed),
            batches: self.batches.load(Ordering::Relaxed),
            batched_requests: self.batched_requests.load(Ordering::Relaxed),
            stacked_rows: self.stacked_rows.load(Ordering::Relaxed),
            max_batch: self.max_batch.load(Ordering::Relaxed),
            queue_high_water: self.queue_high_water.load(Ordering::Relaxed),
            double_resolves: self.double_resolves.load(Ordering::Relaxed),
            cache_hits: 0,
            cache_misses: 0,
            cache_evictions: 0,
            cache_pack_bytes_saved: 0,
        }
    }
}

/// A point-in-time copy of the scheduler's counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StatsSnapshot {
    /// Accepted submissions (tickets issued).
    pub enqueued: u64,
    /// Requests resolved `Ok`.
    pub completed_ok: u64,
    /// Requests resolved `TimedOut`.
    pub timed_out: u64,
    /// Requests resolved `Shed`.
    pub shed: u64,
    /// Requests resolved `Failed`.
    pub failed: u64,
    /// Submissions rejected with `QueueFull` (no ticket issued).
    pub rejected_full: u64,
    /// Submissions rejected with `ShuttingDown` (no ticket issued).
    pub rejected_shutdown: u64,
    /// Re-enqueues after a transient failure.
    pub retries: u64,
    /// Retried requests resolved `TimedOut` without another execution
    /// because their deadline fell within (or before) the backoff window
    /// — at requeue time or while waiting in the delayed queue. Counted
    /// inside `timed_out` for conservation; this is the diagnostic split.
    pub retries_timed_out: u64,
    /// Batched executions run.
    pub batches: u64,
    /// Requests that went through a batched execution.
    pub batched_requests: u64,
    /// Total A-rows executed through the row-stacked GEMM path.
    pub stacked_rows: u64,
    /// Largest batch coalesced.
    pub max_batch: u64,
    /// Highest ready-queue depth observed on any shard.
    pub queue_high_water: u64,
    /// Resolutions that found their ticket already resolved. Always 0 in
    /// a correct scheduler; the exactly-once suites assert it.
    pub double_resolves: u64,
    /// Weight-cache lookups served from a live prepacked entry (0 when
    /// the cache is disabled).
    pub cache_hits: u64,
    /// Weight-cache lookups that had to pack B (cold key, stale blocking,
    /// or a lost insert race). `cache_hits + cache_misses` equals the
    /// number of cache lookups.
    pub cache_misses: u64,
    /// Weight-cache entries evicted (LRU capacity pressure or a blocking
    /// change invalidation).
    pub cache_evictions: u64,
    /// Packed-B bytes that did not have to be rebuilt thanks to cache
    /// hits — the repack work the cache saved.
    pub cache_pack_bytes_saved: u64,
}

impl StatsSnapshot {
    /// Requests resolved so far, over all terminal outcomes.
    pub fn resolved(&self) -> u64 {
        self.completed_ok + self.timed_out + self.shed + self.failed
    }

    /// The conservation invariant: every accepted request has resolved
    /// exactly once (call after a drain).
    pub fn is_conserved(&self) -> bool {
        self.enqueued == self.resolved() && self.double_resolves == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conservation_balances() {
        let s = ServeStats::default();
        for _ in 0..5 {
            ServeStats::bump(&s.enqueued);
        }
        ServeStats::bump(&s.completed_ok);
        ServeStats::bump(&s.timed_out);
        ServeStats::bump(&s.shed);
        ServeStats::bump(&s.failed);
        assert!(!s.snapshot().is_conserved(), "one request still open");
        ServeStats::bump(&s.completed_ok);
        let snap = s.snapshot();
        assert_eq!(snap.resolved(), 5);
        assert!(snap.is_conserved());
    }

    #[test]
    fn high_water_is_a_max() {
        let s = ServeStats::default();
        for depth in [3u64, 9, 1, 7] {
            ServeStats::record_max(&s.queue_high_water, depth);
        }
        assert_eq!(s.snapshot().queue_high_water, 9);
    }

    #[test]
    fn double_resolves_break_conservation() {
        let s = ServeStats::default();
        ServeStats::bump(&s.enqueued);
        ServeStats::bump(&s.completed_ok);
        ServeStats::bump(&s.double_resolves);
        assert!(!s.snapshot().is_conserved());
    }
}
