//! A bounded, lock-free MPMC ring (Vyukov-style sequence slots).
//!
//! This is the hot admission path of the ring-backed scheduler arm
//! (`ME_QUEUE=ring`): producers and consumers synchronize exclusively
//! through `std` atomics — one CAS per push and one per pop on the
//! uncontended path, no mutex anywhere. The algorithm is Dmitry Vyukov's
//! bounded MPMC queue: every slot carries a *sequence* number that
//! encodes, relative to the ring positions, whether the slot is free,
//! published, or still being consumed:
//!
//! - slot `i` starts with `seq = i`: free for the producer that claims
//!   position `i`;
//! - after the producer writes the value it stores `seq = i + 1`
//!   (`Release`): published, claimable by the consumer of position `i`;
//! - after the consumer reads the value it stores `seq = i + cap`
//!   (`Release`): free for the producer of position `i + cap`.
//!
//! Claiming a position is a `compare_exchange_weak` on the shared
//! `enqueue_pos`/`dequeue_pos` counter, so a stalled producer never
//! blocks other producers (they claim later positions), and the value
//! write itself is unsynchronized — made safe by the slot's sequence
//! handshake (the `// SAFETY:` proofs below, budgeted exactly in
//! `verify.allow`).
//!
//! FIFO guarantees: positions are claimed in CAS order, so the queue is
//! linearizable per position; one producer's pushes occupy increasing
//! positions (its program order), and one consumer's pops claim
//! increasing positions — hence per-producer FIFO is preserved within
//! any single consumer's pop stream. The `ring` integration suite
//! asserts exactly-once/no-loss/no-duplication accounting across
//! producer × consumer grids and a ≥1000-seed model-checked sweep.
//!
//! The ring itself never parks: full/empty are immediate `Err`/`None`.
//! The scheduler layers `Condvar` parking for the *idle edge only* on
//! top (see `scheduler::RingQueue`).

use std::cell::UnsafeCell;
use std::mem::MaybeUninit;
use std::sync::atomic::{AtomicUsize, Ordering};

/// One ring slot: the sequence handshake word plus the (unsynchronized)
/// value cell it guards.
struct Slot<T> {
    seq: AtomicUsize,
    value: UnsafeCell<MaybeUninit<T>>,
}

/// Pads the producer and consumer cursors to their own cache lines so
/// push-side and pop-side CAS traffic do not false-share.
#[repr(align(64))]
struct Pad64<T>(T);

/// A bounded, lock-free multi-producer multi-consumer FIFO ring.
///
/// Capacity rounds up to the next power of two (for mask indexing);
/// [`MpmcRing::capacity`] reports the physical size. `push` on a full
/// ring and `pop` on an empty ring return immediately — callers that
/// need blocking behavior must layer their own parking (the scheduler
/// parks on a `Condvar` only at the idle edge).
pub struct MpmcRing<T> {
    buf: Box<[Slot<T>]>,
    mask: usize,
    enqueue_pos: Pad64<AtomicUsize>,
    dequeue_pos: Pad64<AtomicUsize>,
}

// SAFETY: the ring hands each value from exactly one producer to exactly
// one consumer: the slot's sequence word (Release store after the value
// write, Acquire load before the value read) makes the producer's write
// happen-before the consumer's read, and position claiming via CAS makes
// the slot exclusively owned between those two points. No `&T` to a cell
// is ever exposed, so `T: Send` is all the cross-thread transfer needs.
unsafe impl<T: Send> Send for MpmcRing<T> {}
// SAFETY: same argument as `Send` — shared `&MpmcRing` access only ever
// touches a slot's value cell between winning that slot's position CAS
// and publishing the flipped sequence, which is mutual exclusion per
// slot; everything else is atomics.
unsafe impl<T: Send> Sync for MpmcRing<T> {}

impl<T> MpmcRing<T> {
    /// Build a ring with at least `capacity` slots (rounded up to a
    /// power of two, minimum 2 — the sequence arithmetic needs cap ≥ 2).
    pub fn new(capacity: usize) -> MpmcRing<T> {
        let cap = capacity.max(2).next_power_of_two();
        let buf: Vec<Slot<T>> = (0..cap)
            .map(|i| Slot {
                seq: AtomicUsize::new(i),
                value: UnsafeCell::new(MaybeUninit::uninit()),
            })
            .collect();
        MpmcRing {
            buf: buf.into_boxed_slice(),
            mask: cap - 1,
            enqueue_pos: Pad64(AtomicUsize::new(0)),
            dequeue_pos: Pad64(AtomicUsize::new(0)),
        }
    }

    /// Physical slot count (the requested capacity rounded up to a
    /// power of two).
    pub fn capacity(&self) -> usize {
        self.buf.len()
    }

    /// Push a value; `Err(value)` when the ring is full. Equivalent to
    /// [`MpmcRing::push_with`] with an empty hook.
    // me-verify: hot
    pub fn push(&self, value: T) -> Result<(), T> {
        self.push_with(value, || {})
    }

    /// Push a value, running `before_publish` after the slot is claimed
    /// (admission is decided) but *before* the slot's sequence store
    /// makes the value visible to consumers. The scheduler uses the hook
    /// to bump its admission counters so no consumer can observe (and
    /// resolve) a request whose `enqueued` count is not yet visible —
    /// the snapshot-monotonicity contract. Keep hooks tiny: they run
    /// inside the slot's exclusive window.
    // me-verify: hot
    pub fn push_with(&self, value: T, before_publish: impl FnOnce()) -> Result<(), T> {
        let mut pos = self.enqueue_pos.0.load(Ordering::Relaxed);
        loop {
            let slot = &self.buf[pos & self.mask];
            let seq = slot.seq.load(Ordering::Acquire);
            let dif = seq.wrapping_sub(pos) as isize;
            if dif == 0 {
                match self.enqueue_pos.0.compare_exchange_weak(
                    pos,
                    pos.wrapping_add(1),
                    Ordering::Relaxed,
                    Ordering::Relaxed,
                ) {
                    Ok(_) => {
                        // SAFETY: the CAS above claimed position `pos`
                        // exclusively, and `seq == pos` proved the slot
                        // is free (its previous consumer, if any,
                        // already flipped it with a Release store we
                        // Acquire-read). Until the sequence store below,
                        // no other thread touches this cell, so writing
                        // the (possibly uninitialized) cell is exclusive.
                        unsafe { (*slot.value.get()).write(value) };
                        before_publish();
                        slot.seq.store(pos.wrapping_add(1), Ordering::Release);
                        return Ok(());
                    }
                    Err(current) => pos = current,
                }
            } else if dif < 0 {
                return Err(value);
            } else {
                pos = self.enqueue_pos.0.load(Ordering::Relaxed);
            }
        }
    }

    /// Pop the oldest value; `None` when the ring is empty.
    // me-verify: hot
    pub fn pop(&self) -> Option<T> {
        let mut pos = self.dequeue_pos.0.load(Ordering::Relaxed);
        loop {
            let slot = &self.buf[pos & self.mask];
            let seq = slot.seq.load(Ordering::Acquire);
            let dif = seq.wrapping_sub(pos.wrapping_add(1)) as isize;
            if dif == 0 {
                match self.dequeue_pos.0.compare_exchange_weak(
                    pos,
                    pos.wrapping_add(1),
                    Ordering::Relaxed,
                    Ordering::Relaxed,
                ) {
                    Ok(_) => {
                        // SAFETY: the CAS claimed position `pos`
                        // exclusively and `seq == pos + 1` proved the
                        // producer of this position published a value
                        // (its Release store, Acquire-read above, makes
                        // the value write visible). Reading it out once
                        // and then flipping the sequence transfers
                        // ownership of the value to this thread and the
                        // slot back to the ring.
                        let value = unsafe { (*slot.value.get()).assume_init_read() };
                        slot.seq
                            .store(pos.wrapping_add(self.mask + 1), Ordering::Release);
                        return Some(value);
                    }
                    Err(current) => pos = current,
                }
            } else if dif < 0 {
                return None;
            } else {
                pos = self.dequeue_pos.0.load(Ordering::Relaxed);
            }
        }
    }

    /// Whether no published value is currently claimable at the head.
    /// Exact for a single consumer; under concurrent pops it is a
    /// transient snapshot (used by the scheduler's parking protocol,
    /// whose SeqCst fences make "empty then park" safe — see
    /// DESIGN.md §14).
    // me-verify: hot
    pub fn is_empty(&self) -> bool {
        let pos = self.dequeue_pos.0.load(Ordering::Acquire);
        let seq = self.buf[pos & self.mask].seq.load(Ordering::Acquire);
        (seq.wrapping_sub(pos.wrapping_add(1)) as isize) < 0
    }
}

impl<T> Drop for MpmcRing<T> {
    fn drop(&mut self) {
        // Drain the leftovers through the normal pop path so every
        // published-but-unconsumed value runs its destructor exactly
        // once; claimed-but-unpublished slots are untouched (their
        // values were never completed, so there is nothing to drop).
        while self.pop().is_some() {}
    }
}

impl<T> std::fmt::Debug for MpmcRing<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MpmcRing").field("capacity", &self.buf.len()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_single_thread() {
        let r: MpmcRing<u32> = MpmcRing::new(4);
        assert!(r.is_empty());
        for v in 0..4 {
            r.push(v).expect("ring has room");
        }
        assert!(r.push(99).is_err(), "full ring rejects");
        for v in 0..4 {
            assert_eq!(r.pop(), Some(v));
        }
        assert_eq!(r.pop(), None);
        assert!(r.is_empty());
    }

    #[test]
    fn capacity_rounds_up() {
        assert_eq!(MpmcRing::<u8>::new(0).capacity(), 2);
        assert_eq!(MpmcRing::<u8>::new(5).capacity(), 8);
        assert_eq!(MpmcRing::<u8>::new(8).capacity(), 8);
    }

    #[test]
    fn wraparound_reuses_slots() {
        let r: MpmcRing<usize> = MpmcRing::new(2);
        for round in 0..1000 {
            r.push(round).expect("room");
            assert_eq!(r.pop(), Some(round));
        }
    }

    #[test]
    fn push_with_hook_runs_before_value_is_poppable() {
        use std::sync::atomic::AtomicBool;
        let r: MpmcRing<u8> = MpmcRing::new(2);
        let hooked = AtomicBool::new(false);
        r.push_with(7, || hooked.store(true, Ordering::Relaxed)).expect("room");
        assert!(hooked.load(Ordering::Relaxed), "hook ran during push");
        assert_eq!(r.pop(), Some(7));
    }

    #[test]
    fn drop_releases_leftovers() {
        use std::sync::Arc;
        let payload = Arc::new(0u64);
        {
            let r: MpmcRing<Arc<u64>> = MpmcRing::new(8);
            for _ in 0..5 {
                r.push(Arc::clone(&payload)).expect("room");
            }
            assert_eq!(Arc::strong_count(&payload), 6);
        }
        assert_eq!(Arc::strong_count(&payload), 1, "drop drained the ring");
    }
}
