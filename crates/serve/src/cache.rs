//! The prepacked-B weight cache.
//!
//! The Table V replay is inference-shaped: thousands of skinny requests
//! (`m ∈ {1, 2}`) multiply against a handful of long-lived weight
//! matrices. Without a cache every coalesced batch re-packs `B` into the
//! NR-column/KC-block panel layout from scratch, so the replay is
//! pack-dominated, not FLOP-dominated. [`WeightCache`] makes the pack a
//! one-time cost: a bounded, LRU-evicted map from the GEMM [`BucketKey`]
//! to an `Arc<PackedB<f64>>` built by [`me_linalg::pack_b_matrix`] —
//! steady-state traffic packs each weight matrix exactly once, and the
//! prepacked GEMM path consumes the stored panels **bitwise-identically**
//! to a fresh pack (the §12 layout contract).
//!
//! Three hazards shape the design:
//!
//! - **ABA on the key.** `BucketKey::Gemm` keys on `Arc::as_ptr(&b)`; a
//!   freed-and-reallocated weight matrix could reuse the address. Every
//!   entry therefore pins its `B` with a strong `Arc<Mat<f64>>` clone —
//!   while the entry lives, the allocation cannot be recycled, so a key
//!   match implies the same matrix.
//! - **Eviction mid-compute.** Lookups hand out `Arc<PackedB<f64>>`
//!   clones; evicting an entry only drops the cache's reference, so a
//!   batch already computing against the panels finishes safely on its
//!   own clone (the ref-counted half of the design).
//! - **Stale blocking.** `kc` is the one numerically observable blocking
//!   parameter. An entry packed under a `kc` that no longer matches the
//!   variant's current [`blocking_for`] would silently change result
//!   bits vs the fresh-pack arm, so such entries are invalidated and
//!   repacked on lookup (counted as misses).
//!
//! Locking: the map sits behind one `Mutex`, but the expensive pack runs
//! *outside* it (lock → probe → unlock; pack; lock → insert). Two shards
//! racing on the same cold key may both pack — the loser's work is
//! dropped in favor of the incumbent entry (both are byte-identical), and
//! each race party counts one miss, keeping
//! `hits + misses == lookups` exact.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};

use me_linalg::{blocking_for, pack_b_matrix, KernelVariant, Mat, PackedB};

use crate::request::BucketKey;

/// Default capacity when `ME_WEIGHT_CACHE` is unset and the config asks
/// for auto sizing: 64 MiB of packed panels (a few dozen Table V weight
/// matrices).
pub const DEFAULT_WEIGHT_CACHE_BYTES: usize = 64 * 1024 * 1024;

struct Entry {
    /// Strong pin on the weight matrix: defeats `Arc::as_ptr` ABA reuse
    /// for as long as the entry lives.
    _b_pin: Arc<Mat<f64>>,
    packed: Arc<PackedB<f64>>,
    bytes: usize,
    /// Tick of the most recent hit or insertion (LRU recency).
    last_use: u64,
}

struct Inner {
    map: HashMap<BucketKey, Entry>,
    bytes_used: usize,
    tick: u64,
}

/// A point-in-time copy of the cache counters.
///
/// Conservation: `hits + misses` equals the number of lookups, and
/// `pack_bytes_saved` grows by the packed size on every hit — the serve
/// bench derives its ≥90 % hit-rate gate from these.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Lookups served from a live entry.
    pub hits: u64,
    /// Lookups that had to pack (cold key, stale blocking, or a lost
    /// insert race).
    pub misses: u64,
    /// Entries removed to make room (LRU) or invalidated by a blocking
    /// change.
    pub evictions: u64,
    /// Packed bytes that did **not** have to be rebuilt thanks to hits.
    pub pack_bytes_saved: u64,
    /// Live entries right now.
    pub entries: u64,
    /// Packed payload bytes currently held.
    pub bytes_used: u64,
}

/// Bounded, LRU-evicted map from GEMM bucket to prepacked B panels.
/// Shared across every shard of a [`crate::Scheduler`]; all methods are
/// `&self` and thread-safe.
pub struct WeightCache {
    inner: Mutex<Inner>,
    capacity_bytes: usize,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    pack_bytes_saved: AtomicU64,
}

impl WeightCache {
    /// A cache bounded to `capacity_bytes` of packed payload.
    pub fn new(capacity_bytes: usize) -> WeightCache {
        WeightCache {
            inner: Mutex::new(Inner { map: HashMap::new(), bytes_used: 0, tick: 0 }),
            capacity_bytes,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            pack_bytes_saved: AtomicU64::new(0),
        }
    }

    /// The configured payload bound in bytes.
    pub fn capacity_bytes(&self) -> usize {
        self.capacity_bytes
    }

    /// Live entry count.
    pub fn len(&self) -> usize {
        self.lock().map.len()
    }

    /// Whether the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Packed payload bytes currently held.
    pub fn bytes_used(&self) -> usize {
        self.lock().bytes_used
    }

    /// Snapshot the hit/miss/eviction counters.
    pub fn stats(&self) -> CacheStats {
        let (entries, bytes_used) = {
            let inner = self.lock();
            (inner.map.len() as u64, inner.bytes_used as u64)
        };
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            pack_bytes_saved: self.pack_bytes_saved.load(Ordering::Relaxed),
            entries,
            bytes_used,
        }
    }

    /// The keys currently cached, least-recently-used first (test/debug
    /// introspection for the eviction-order suite).
    pub fn keys_lru_order(&self) -> Vec<BucketKey> {
        let inner = self.lock();
        let mut keyed: Vec<(u64, BucketKey)> =
            inner.map.iter().map(|(k, e)| (e.last_use, *k)).collect();
        keyed.sort_by_key(|&(t, _)| t);
        keyed.into_iter().map(|(_, k)| k).collect()
    }

    /// Fetch the prepacked panels for `(key, b, variant)`, packing and
    /// inserting on a miss. The returned `Arc` stays valid regardless of
    /// later evictions. The entry is validated against the variant's
    /// *current* blocking `kc` (the numerically observable parameter) —
    /// a stale entry is evicted and repacked so cached and fresh GEMMs
    /// stay bitwise-identical.
    pub fn get_or_pack(
        &self,
        key: BucketKey,
        b: &Arc<Mat<f64>>,
        variant: KernelVariant,
    ) -> Arc<PackedB<f64>> {
        let blocking = blocking_for(variant.resolve_supported());
        {
            let mut inner = self.lock();
            inner.tick += 1;
            let tick = inner.tick;
            if let Some(entry) = inner.map.get_mut(&key) {
                if entry.packed.blocking().kc == blocking.kc {
                    entry.last_use = tick;
                    let packed = Arc::clone(&entry.packed);
                    self.hits.fetch_add(1, Ordering::Relaxed);
                    self.pack_bytes_saved.fetch_add(entry.bytes as u64, Ordering::Relaxed);
                    me_trace::counter_add("serve.cache.hit", 1);
                    me_trace::counter_add("serve.cache.pack_bytes_saved", entry.bytes as u64);
                    return packed;
                }
                // Stale kc: the panels would replay a different FMA grid.
                if let Some(old) = inner.map.remove(&key) {
                    inner.bytes_used = inner.bytes_used.saturating_sub(old.bytes);
                    self.evictions.fetch_add(1, Ordering::Relaxed);
                    me_trace::counter_add("serve.cache.evict", 1);
                }
            }
        }
        // Miss: pack outside the lock so a large B never stalls other
        // shards' lookups.
        self.misses.fetch_add(1, Ordering::Relaxed);
        me_trace::counter_add("serve.cache.miss", 1);
        let packed = {
            let _s = me_trace::span("serve.cache.pack", "serve");
            Arc::new(pack_b_matrix(b.as_ref(), blocking))
        };
        let bytes = packed.bytes();
        if bytes > self.capacity_bytes {
            // Too large to ever cache: hand it to this batch uncached.
            return packed;
        }
        let mut inner = self.lock();
        inner.tick += 1;
        let tick = inner.tick;
        if let Some(entry) = inner.map.get_mut(&key) {
            // Lost an insert race; the incumbent is byte-identical (same
            // pack routine, same blocking), so share it and drop ours.
            if entry.packed.blocking().kc == blocking.kc {
                entry.last_use = tick;
                return Arc::clone(&entry.packed);
            }
        }
        while inner.bytes_used + bytes > self.capacity_bytes {
            let Some(victim) = inner
                .map
                .iter()
                .min_by_key(|(_, e)| e.last_use)
                .map(|(k, _)| *k)
            else {
                break;
            };
            if let Some(old) = inner.map.remove(&victim) {
                inner.bytes_used = inner.bytes_used.saturating_sub(old.bytes);
                self.evictions.fetch_add(1, Ordering::Relaxed);
                me_trace::counter_add("serve.cache.evict", 1);
            }
        }
        inner.bytes_used += bytes;
        inner.map.insert(
            key,
            Entry { _b_pin: Arc::clone(b), packed: Arc::clone(&packed), bytes, last_use: tick },
        );
        packed
    }

    fn lock(&self) -> MutexGuard<'_, Inner> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }
}

impl std::fmt::Debug for WeightCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let stats = self.stats();
        f.debug_struct("WeightCache")
            .field("capacity_bytes", &self.capacity_bytes)
            .field("stats", &stats)
            .finish()
    }
}
