//! # me-serve — a batched, sharded GEMM request scheduler
//!
//! The paper's utilization argument (Sec. IV, Table V) is that matrix
//! engines only pay off when the work arriving at them is big enough to
//! fill the tiles; real HPC/inference *services* instead see streams of
//! small, heterogeneous GEMMs. This crate closes that gap in software:
//! it accepts GEMM and Ozaki-GEMM requests through bounded per-shard
//! queues, buckets them by (shared-operand identity, shape, precision,
//! kernel variant), and **coalesces compatible requests into one batched
//! execution** — row-stacking shared-`B` GEMMs into a single `(Σmᵢ) ×
//! k × n` call so the packed core amortizes its B-pack and fills its MR
//! tiles, bitwise-identically to running each request alone.
//!
//! Robustness is first-class, not best-effort:
//!
//! - **Backpressure** — a full shard queue rejects with
//!   [`SubmitError::QueueFull`]; no unbounded buffering.
//! - **Deadlines** — per-request timeouts, checked at dequeue and again
//!   after execution ([`Outcome::TimedOut`]).
//! - **Retry** — transient failures re-enqueue with exponential backoff,
//!   bounded by [`ServeConfig::max_retries`].
//! - **Load shedding** — drop-head beyond a watermark
//!   ([`Outcome::Shed`]) keeps queue latency bounded.
//! - **Panic isolation** — a panicking job fails its own [`Ticket`]
//!   ([`Outcome::Failed`]); the shard and every other request survive.
//! - **Graceful drain** — [`Scheduler::shutdown`] (and `Drop`) stops
//!   intake, resolves everything already admitted (including in-flight
//!   retries), and joins the shard threads.
//!
//! Every accepted request resolves **exactly once**; the
//! [`StatsSnapshot`] conservation counters
//! (`enqueued == ok + timed_out + shed + failed`, `double_resolves == 0`)
//! make that auditable, and the fault-injection suite replays thousands
//! of seeded [`FaultPlan`]s to prove it holds under panics, delays,
//! forced timeouts, and retries at every pool width.
//!
//! ```
//! use std::sync::Arc;
//! use me_serve::{Job, Scheduler, ServeConfig, Outcome};
//! use me_linalg::{KernelVariant, Mat};
//!
//! let sched = Scheduler::new(ServeConfig { shards: 1, shard_threads: 1, ..Default::default() });
//! let b = Arc::new(Mat::from_fn(4, 3, |i, j| (i + j) as f64));
//! let a = Arc::new(Mat::from_fn(2, 4, |i, j| (i * 4 + j) as f64));
//! let ticket = sched.submit(Job::gemm(KernelVariant::Scalar, 1.0, a, b)).unwrap();
//! match ticket.wait().outcome {
//!     Outcome::Ok(c) => assert_eq!((c.rows(), c.cols()), (2, 3)),
//!     other => panic!("unexpected outcome: {other:?}"),
//! }
//! let stats = sched.shutdown();
//! assert!(stats.is_conserved());
//! ```

pub mod cache;
pub mod fault;
pub mod request;
pub mod ring;
mod scheduler;
mod stats;

pub use cache::{CacheStats, WeightCache, DEFAULT_WEIGHT_CACHE_BYTES};
pub use fault::{Fault, FaultConfig, FaultPlan, FaultStage, INJECTED_PANIC};
pub use request::{
    BucketKey, Completion, GemmJob, Job, JobKind, Outcome, OzakiJob, SubmitError, TenantId, Ticket,
};
pub use ring::MpmcRing;
pub use scheduler::{QueueKind, Scheduler, ServeConfig};
pub use stats::{StatsSnapshot, TenantSnapshot};

/// Environment variable consulted by [`resolve_shards`] when the
/// requested shard count is `0`.
pub const SHARDS_ENV: &str = "ME_SHARDS";

/// Resolve the shard count for a scheduler.
///
/// Priority: an explicit positive `requested` wins; else a positive
/// integer in `ME_SHARDS`; else `min(4, available parallelism)`. Always
/// at least 1.
///
/// **Startup-read contract** (DESIGN.md §10): like
/// [`me_par::resolve_threads`], this reads the environment at
/// [`Scheduler::new`] time only — mutating `ME_SHARDS` afterwards never
/// retargets a live scheduler, and tests that set it must serialize
/// through [`me_par::env_lock`].
// me-verify: env-startup
pub fn resolve_shards(requested: usize) -> usize {
    if requested > 0 {
        return requested;
    }
    if let Ok(raw) = std::env::var(SHARDS_ENV) {
        if let Ok(n) = raw.trim().parse::<usize>() {
            if n > 0 {
                return n;
            }
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .min(4)
        .max(1)
}

/// Environment variable consulted by [`resolve_weight_cache`] when the
/// configured capacity is `usize::MAX` (auto). Accepts a byte count with
/// an optional `k` / `m` / `g` suffix (binary units); `0` disables the
/// cache.
pub const WEIGHT_CACHE_ENV: &str = "ME_WEIGHT_CACHE";

/// Resolve the prepacked-B weight-cache capacity in bytes.
///
/// Priority: an explicit `requested` other than `usize::MAX` wins (`0`
/// disables caching); else a parseable `ME_WEIGHT_CACHE` (bytes, with
/// optional `k`/`m`/`g` binary suffix, `0` = disabled); else
/// [`DEFAULT_WEIGHT_CACHE_BYTES`].
///
/// **Startup-read contract** (DESIGN.md §10): like [`resolve_shards`],
/// this reads the environment at [`Scheduler::new`] time only — mutating
/// `ME_WEIGHT_CACHE` afterwards never resizes a live scheduler's cache,
/// and tests that set it must serialize through [`me_par::env_lock`].
// me-verify: env-startup
pub fn resolve_weight_cache(requested: usize) -> usize {
    if requested != usize::MAX {
        return requested;
    }
    if let Ok(raw) = std::env::var(WEIGHT_CACHE_ENV) {
        if let Some(bytes) = parse_byte_size(&raw) {
            return bytes;
        }
    }
    DEFAULT_WEIGHT_CACHE_BYTES
}

/// Environment variable consulted by [`resolve_queue`] when
/// [`ServeConfig::queue`] is `None`. Accepts `mutex` or `ring`
/// (case-insensitive).
pub const QUEUE_ENV: &str = "ME_QUEUE";

/// Resolve the shard queue implementation for a scheduler.
///
/// Priority: an explicit `Some(kind)` wins; else `ME_QUEUE`
/// (`"mutex"` / `"ring"`, case-insensitive); else [`QueueKind::Ring`].
///
/// **Startup-read contract** (DESIGN.md §10): like [`resolve_shards`],
/// this reads the environment at [`Scheduler::new`] time only — mutating
/// `ME_QUEUE` afterwards never swaps a live scheduler's queues, and
/// tests that set it must serialize through [`me_par::env_lock`].
// me-verify: env-startup
pub fn resolve_queue(requested: Option<QueueKind>) -> QueueKind {
    if let Some(kind) = requested {
        return kind;
    }
    if let Ok(raw) = std::env::var(QUEUE_ENV) {
        match raw.trim().to_ascii_lowercase().as_str() {
            "mutex" => return QueueKind::Mutex,
            "ring" => return QueueKind::Ring,
            _ => {}
        }
    }
    QueueKind::Ring
}

/// Environment variable consulted by [`resolve_tenant_weights`] when
/// [`ServeConfig::tenant_weights`] is empty. Accepts a comma-separated
/// list of positive integers, e.g. `"1,3"` for a 1:3 two-tenant split.
pub const TENANT_WEIGHTS_ENV: &str = "ME_TENANT_WEIGHTS";

/// Resolve the per-tenant weighted-fair admission weights.
///
/// Priority: a non-empty explicit `requested` wins; else a fully
/// parseable `ME_TENANT_WEIGHTS` comma list; else a single tenant
/// (`vec![1]`, which disables fairness accounting and reproduces the
/// legacy single-stream dequeue order exactly). Every weight is clamped
/// to at least 1 so deficit round-robin always makes progress.
///
/// **Startup-read contract** (DESIGN.md §10): like [`resolve_shards`],
/// this reads the environment at [`Scheduler::new`] time only — mutating
/// `ME_TENANT_WEIGHTS` afterwards never reweights a live scheduler, and
/// tests that set it must serialize through [`me_par::env_lock`].
// me-verify: env-startup
pub fn resolve_tenant_weights(requested: &[u64]) -> Vec<u64> {
    if !requested.is_empty() {
        return requested.iter().map(|&w| w.max(1)).collect();
    }
    if let Ok(raw) = std::env::var(TENANT_WEIGHTS_ENV) {
        let parsed: Option<Vec<u64>> = raw
            .split(',')
            .map(|part| part.trim().parse::<u64>().ok().map(|w| w.max(1)))
            .collect();
        if let Some(weights) = parsed {
            if !weights.is_empty() {
                return weights;
            }
        }
    }
    vec![1]
}

/// Environment variable consulted by [`resolve_autotune`] when
/// [`ServeConfig::autotune`] is `None`. Accepts `startup` (run the
/// GEMMbench blocking sweep at [`Scheduler::new`], loading a persisted
/// artifact when one exists) or `off` (case-insensitive).
pub const AUTOTUNE_ENV: &str = "ME_AUTOTUNE";

/// When the serving layer runs the GEMM blocking autotune sweep.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AutotunePolicy {
    /// Never touch the dispatch table; compiled defaults / `ME_BLOCKING`
    /// only. The default: library code must not sweep implicitly.
    Off,
    /// Run [`me_linalg::blas3::autotune::ensure_autotuned`] once during
    /// [`Scheduler::new`]: load the persisted artifact if present, else
    /// run the quick sweep and persist it, then install the winners.
    Startup,
}

/// Resolve the autotune policy for a scheduler.
///
/// Priority: an explicit `Some(policy)` wins; else `ME_AUTOTUNE`
/// (`"startup"` / `"off"`, case-insensitive); else
/// [`AutotunePolicy::Off`].
///
/// **Startup-read contract** (DESIGN.md §10): like [`resolve_shards`],
/// this reads the environment at [`Scheduler::new`] time only — setting
/// `ME_AUTOTUNE` afterwards never retunes a live scheduler, and tests
/// that set it must serialize through [`me_par::env_lock`].
// me-verify: env-startup
pub fn resolve_autotune(requested: Option<AutotunePolicy>) -> AutotunePolicy {
    if let Some(policy) = requested {
        return policy;
    }
    if let Ok(raw) = std::env::var(AUTOTUNE_ENV) {
        match raw.trim().to_ascii_lowercase().as_str() {
            "startup" => return AutotunePolicy::Startup,
            "off" => return AutotunePolicy::Off,
            _ => {}
        }
    }
    AutotunePolicy::Off
}

/// Parse a byte count with an optional `k`/`m`/`g` binary suffix
/// (case-insensitive): `"1048576"`, `"64m"`, `"2G"`. `None` on anything
/// else, including overflow.
fn parse_byte_size(raw: &str) -> Option<usize> {
    let s = raw.trim();
    let (digits, shift) = match s.char_indices().last()? {
        (i, 'k') | (i, 'K') => (&s[..i], 10u32),
        (i, 'm') | (i, 'M') => (&s[..i], 20),
        (i, 'g') | (i, 'G') => (&s[..i], 30),
        _ => (s, 0),
    };
    let base: usize = digits.trim().parse().ok()?;
    base.checked_shl(shift)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn weight_cache_size_parsing() {
        assert_eq!(parse_byte_size("0"), Some(0));
        assert_eq!(parse_byte_size("1048576"), Some(1 << 20));
        assert_eq!(parse_byte_size("64m"), Some(64 << 20));
        assert_eq!(parse_byte_size(" 2G "), Some(2 << 30));
        assert_eq!(parse_byte_size("8k"), Some(8 << 10));
        for bad in ["", "m", "-1", "64q", "1.5m"] {
            assert_eq!(parse_byte_size(bad), None, "{bad:?} must not parse");
        }
    }

    #[test]
    fn weight_cache_resolution_priority() {
        let _guard = me_par::env_lock().lock().unwrap_or_else(|e| e.into_inner());
        let saved = std::env::var(WEIGHT_CACHE_ENV).ok();
        std::env::remove_var(WEIGHT_CACHE_ENV);
        assert_eq!(resolve_weight_cache(0), 0, "explicit 0 disables");
        assert_eq!(resolve_weight_cache(123), 123, "explicit size wins");
        assert_eq!(resolve_weight_cache(usize::MAX), DEFAULT_WEIGHT_CACHE_BYTES);
        std::env::set_var(WEIGHT_CACHE_ENV, "16m");
        assert_eq!(resolve_weight_cache(usize::MAX), 16 << 20);
        assert_eq!(resolve_weight_cache(77), 77, "explicit beats env");
        std::env::set_var(WEIGHT_CACHE_ENV, "garbage");
        assert_eq!(resolve_weight_cache(usize::MAX), DEFAULT_WEIGHT_CACHE_BYTES);
        std::env::remove_var(WEIGHT_CACHE_ENV);
        if let Some(v) = saved {
            std::env::set_var(WEIGHT_CACHE_ENV, v);
        }
    }

    #[test]
    fn queue_kind_resolution_priority() {
        let _guard = me_par::env_lock().lock().unwrap_or_else(|e| e.into_inner());
        let saved = std::env::var(QUEUE_ENV).ok();
        std::env::remove_var(QUEUE_ENV);
        assert_eq!(resolve_queue(None), QueueKind::Ring, "default is ring");
        assert_eq!(resolve_queue(Some(QueueKind::Mutex)), QueueKind::Mutex);
        std::env::set_var(QUEUE_ENV, "mutex");
        assert_eq!(resolve_queue(None), QueueKind::Mutex);
        assert_eq!(
            resolve_queue(Some(QueueKind::Ring)),
            QueueKind::Ring,
            "explicit beats env"
        );
        std::env::set_var(QUEUE_ENV, " RING ");
        assert_eq!(resolve_queue(None), QueueKind::Ring);
        std::env::set_var(QUEUE_ENV, "garbage");
        assert_eq!(resolve_queue(None), QueueKind::Ring, "garbage falls back");
        std::env::remove_var(QUEUE_ENV);
        if let Some(v) = saved {
            std::env::set_var(QUEUE_ENV, v);
        }
    }

    #[test]
    fn tenant_weight_resolution_priority() {
        let _guard = me_par::env_lock().lock().unwrap_or_else(|e| e.into_inner());
        let saved = std::env::var(TENANT_WEIGHTS_ENV).ok();
        std::env::remove_var(TENANT_WEIGHTS_ENV);
        assert_eq!(resolve_tenant_weights(&[]), vec![1], "default single tenant");
        assert_eq!(resolve_tenant_weights(&[2, 5]), vec![2, 5], "explicit wins");
        assert_eq!(resolve_tenant_weights(&[0, 3]), vec![1, 3], "zero clamps to 1");
        std::env::set_var(TENANT_WEIGHTS_ENV, "1, 3 ,2");
        assert_eq!(resolve_tenant_weights(&[]), vec![1, 3, 2]);
        assert_eq!(resolve_tenant_weights(&[7]), vec![7], "explicit beats env");
        std::env::set_var(TENANT_WEIGHTS_ENV, "1,oops");
        assert_eq!(resolve_tenant_weights(&[]), vec![1], "bad list falls back whole");
        std::env::set_var(TENANT_WEIGHTS_ENV, "0,4");
        assert_eq!(resolve_tenant_weights(&[]), vec![1, 4], "env zero clamps to 1");
        std::env::remove_var(TENANT_WEIGHTS_ENV);
        if let Some(v) = saved {
            std::env::set_var(TENANT_WEIGHTS_ENV, v);
        }
    }

    #[test]
    fn autotune_resolution_priority() {
        let _guard = me_par::env_lock().lock().unwrap_or_else(|e| e.into_inner());
        let saved = std::env::var(AUTOTUNE_ENV).ok();
        std::env::remove_var(AUTOTUNE_ENV);
        assert_eq!(resolve_autotune(None), AutotunePolicy::Off, "default is off");
        assert_eq!(resolve_autotune(Some(AutotunePolicy::Startup)), AutotunePolicy::Startup);
        std::env::set_var(AUTOTUNE_ENV, " Startup ");
        assert_eq!(resolve_autotune(None), AutotunePolicy::Startup);
        assert_eq!(
            resolve_autotune(Some(AutotunePolicy::Off)),
            AutotunePolicy::Off,
            "explicit beats env"
        );
        std::env::set_var(AUTOTUNE_ENV, "off");
        assert_eq!(resolve_autotune(None), AutotunePolicy::Off);
        std::env::set_var(AUTOTUNE_ENV, "garbage");
        assert_eq!(resolve_autotune(None), AutotunePolicy::Off, "garbage falls back");
        std::env::remove_var(AUTOTUNE_ENV);
        if let Some(v) = saved {
            std::env::set_var(AUTOTUNE_ENV, v);
        }
    }

    #[test]
    fn explicit_request_wins() {
        let _guard = me_par::env_lock().lock().unwrap_or_else(|e| e.into_inner());
        assert_eq!(resolve_shards(3), 3);
        assert_eq!(resolve_shards(1), 1);
    }

    #[test]
    fn env_and_fallback_resolution() {
        let _guard = me_par::env_lock().lock().unwrap_or_else(|e| e.into_inner());
        let saved = std::env::var(SHARDS_ENV).ok();
        std::env::set_var(SHARDS_ENV, "7");
        assert_eq!(resolve_shards(0), 7);
        std::env::set_var(SHARDS_ENV, "0");
        let auto = resolve_shards(0);
        assert!((1..=4).contains(&auto), "garbage env falls back to auto, got {auto}");
        std::env::set_var(SHARDS_ENV, "not-a-number");
        assert_eq!(resolve_shards(0), auto);
        std::env::remove_var(SHARDS_ENV);
        assert_eq!(resolve_shards(0), auto);
        if let Some(v) = saved {
            std::env::set_var(SHARDS_ENV, v);
        }
    }
}
