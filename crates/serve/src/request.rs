//! Request and completion types: what callers submit and what they get
//! back.
//!
//! A [`Job`] owns its operands through `Arc<Mat<f64>>`, so a request costs
//! two reference-count bumps to enqueue — no matrix copies cross the
//! submission queue. Completion is a per-request [`Ticket`]: a one-shot
//! slot the scheduler resolves **exactly once** with one of the four
//! terminal [`Outcome`]s; [`Ticket::wait`] blocks until then. The
//! scheduler resolves tickets from its shard thread in FIFO order within
//! a batch, stamping each with a global resolution sequence number so
//! tests can assert bucket-level FIFO without instrumenting the clock.

use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use me_linalg::{KernelVariant, Mat};
use me_ozaki::{OzakiConfig, TargetAccuracy};

/// A GEMM request: `C = alpha · A · B` with a pinned micro-kernel
/// variant (`C` is freshly allocated by the scheduler; there is no `beta`
/// term because a served request has no pre-existing output to scale).
///
/// Requests that share the *same* `Arc` for `B` (the "weights" of a
/// served model), the same `alpha`, and the same variant land in the same
/// bucket and are coalesced by row-stacking their `A` operands into one
/// large GEMM — bitwise-identical to running each request alone, because
/// the packed core's per-element FMA order never depends on the row
/// partition (see `me-linalg::blas3`).
#[derive(Debug, Clone)]
pub struct GemmJob {
    /// Micro-kernel variant to pin (resolved through
    /// [`KernelVariant::resolve_supported`] at execution).
    pub variant: KernelVariant,
    /// Scale applied to the product.
    pub alpha: f64,
    /// Left operand, `m × k`.
    pub a: Arc<Mat<f64>>,
    /// Right operand, `k × n`; sharing one `Arc` across requests enables
    /// stacked batching.
    pub b: Arc<Mat<f64>>,
}

/// An Ozaki-scheme emulated-GEMM request: `C = A · B` at the accuracy
/// target in `cfg`. Batched requests execute per-request (fanned over the
/// shard's pool) — each is the exact serial [`me_ozaki::ozaki_gemm`].
#[derive(Debug, Clone)]
pub struct OzakiJob {
    /// Engine precision / accuracy-target configuration.
    pub cfg: OzakiConfig,
    /// Left operand, `m × k`.
    pub a: Arc<Mat<f64>>,
    /// Right operand, `k × n`.
    pub b: Arc<Mat<f64>>,
}

/// The work a request carries.
#[derive(Debug, Clone)]
pub enum JobKind {
    /// Plain (hardware-precision) GEMM.
    Gemm(GemmJob),
    /// Ozaki-scheme emulated GEMM.
    Ozaki(OzakiJob),
}

/// The tenant a request is billed to for weighted-fair admission.
///
/// Tenant ids map onto the scheduler's configured weight slots modulo
/// the slot count ([`crate::ServeConfig::tenant_weights`]); with a
/// single slot (the default) every tenant shares one FIFO class and
/// scheduling is exactly the pre-tenant behavior.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct TenantId(pub u32);

/// A schedulable request: the job plus its per-request deadline policy
/// and the tenant it is billed to.
#[derive(Debug, Clone)]
pub struct Job {
    /// What to compute.
    pub kind: JobKind,
    /// Optional timeout measured from submission; a request that cannot
    /// complete before its deadline resolves [`Outcome::TimedOut`].
    pub timeout: Option<Duration>,
    /// Tenant billed for this request (default tenant 0).
    pub tenant: TenantId,
}

impl Job {
    /// A GEMM job with no deadline.
    pub fn gemm(variant: KernelVariant, alpha: f64, a: Arc<Mat<f64>>, b: Arc<Mat<f64>>) -> Self {
        Job {
            kind: JobKind::Gemm(GemmJob { variant, alpha, a, b }),
            timeout: None,
            tenant: TenantId::default(),
        }
    }

    /// An Ozaki job with no deadline.
    pub fn ozaki(cfg: OzakiConfig, a: Arc<Mat<f64>>, b: Arc<Mat<f64>>) -> Self {
        Job {
            kind: JobKind::Ozaki(OzakiJob { cfg, a, b }),
            timeout: None,
            tenant: TenantId::default(),
        }
    }

    /// Attach a timeout (deadline = submission instant + `timeout`).
    pub fn with_timeout(mut self, timeout: Duration) -> Self {
        self.timeout = Some(timeout);
        self
    }

    /// Bill the request to `tenant` for weighted-fair admission.
    pub fn with_tenant(mut self, tenant: TenantId) -> Self {
        self.tenant = tenant;
        self
    }

    /// The request's output shape `(m, n)`.
    pub fn out_shape(&self) -> (usize, usize) {
        match &self.kind {
            JobKind::Gemm(g) => (g.a.rows(), g.b.cols()),
            JobKind::Ozaki(o) => (o.a.rows(), o.b.cols()),
        }
    }

    /// Validate operand shapes: the inner dimensions must agree. Checked
    /// at submission so a malformed request is a caller-visible error,
    /// never a panic on a shard thread.
    pub fn shape_ok(&self) -> bool {
        match &self.kind {
            JobKind::Gemm(g) => g.a.cols() == g.b.rows(),
            JobKind::Ozaki(o) => o.a.cols() == o.b.rows(),
        }
    }
}

/// Batching bucket identity: requests in the same bucket may be coalesced
/// into one batched execution, and the bucket hash picks the shard.
///
/// For GEMM the key is `(B identity, k, n, alpha bits, variant)` — `B`
/// *identity* (the `Arc` pointer), not content, so only genuinely shared
/// weights stack. For Ozaki it is the operand shape plus every
/// accuracy-relevant config field.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BucketKey {
    /// Stackable GEMM bucket.
    Gemm {
        /// `Arc::as_ptr` of the shared right operand.
        b_ident: usize,
        /// Inner dimension.
        k: usize,
        /// Output columns.
        n: usize,
        /// `alpha.to_bits()` — bitwise, so `-0.0` and `0.0` are distinct
        /// buckets rather than a float comparison.
        alpha_bits: u64,
        /// Pinned micro-kernel variant.
        variant: KernelVariant,
    },
    /// Ozaki bucket (per-request execution, pool fan-out).
    Ozaki {
        /// `Arc::as_ptr` of the right operand.
        b_ident: usize,
        /// Inner dimension.
        k: usize,
        /// Output columns.
        n: usize,
        /// `(mul_precision, acc_precision)` of the emulated engine.
        precision: (u32, u32),
        /// Accuracy-target discriminant.
        target: u8,
        /// Inner-dimension blocking.
        k_block: usize,
    },
}

impl BucketKey {
    /// Compute the bucket for a job.
    pub fn of(job: &Job) -> BucketKey {
        match &job.kind {
            JobKind::Gemm(g) => BucketKey::Gemm {
                b_ident: Arc::as_ptr(&g.b) as usize,
                k: g.b.rows(),
                n: g.b.cols(),
                alpha_bits: g.alpha.to_bits(),
                variant: g.variant,
            },
            JobKind::Ozaki(o) => BucketKey::Ozaki {
                b_ident: Arc::as_ptr(&o.b) as usize,
                k: o.b.rows(),
                n: o.b.cols(),
                precision: (o.cfg.mul_precision, o.cfg.acc_precision),
                target: match o.cfg.target {
                    TargetAccuracy::Exact => 0,
                    TargetAccuracy::DgemmEquivalent => 1,
                    TargetAccuracy::SgemmEquivalent => 2,
                },
                k_block: o.cfg.k_block,
            },
        }
    }

    /// Stable 64-bit hash (SplitMix64 over the key fields), used for
    /// shard placement: `shard = hash % nshards`.
    pub fn shard_hash(&self) -> u64 {
        fn mix(h: u64, v: u64) -> u64 {
            let mut z = h ^ v.wrapping_mul(0x9e37_79b9_7f4a_7c15);
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
        match *self {
            BucketKey::Gemm { b_ident, k, n, alpha_bits, variant } => {
                let mut h = mix(0x47_45_4d_4d, b_ident as u64);
                h = mix(h, k as u64);
                h = mix(h, n as u64);
                h = mix(h, alpha_bits);
                mix(h, variant as u64)
            }
            BucketKey::Ozaki { b_ident, k, n, precision, target, k_block } => {
                let mut h = mix(0x4f_5a_41_4b, b_ident as u64);
                h = mix(h, k as u64);
                h = mix(h, n as u64);
                h = mix(h, (u64::from(precision.0) << 32) | u64::from(precision.1));
                h = mix(h, u64::from(target));
                mix(h, k_block as u64)
            }
        }
    }
}

/// Terminal state of a request. Every accepted submission resolves to
/// exactly one of these.
#[derive(Debug)]
pub enum Outcome {
    /// The computed result.
    Ok(Mat<f64>),
    /// The deadline expired before (or during) execution.
    TimedOut,
    /// Load-shedding dropped the request to bound queue latency.
    Shed,
    /// The request failed (panic in its job, or retries exhausted); the
    /// string describes why.
    Failed(String),
}

impl Outcome {
    /// Short label for counters and assertions.
    pub fn label(&self) -> &'static str {
        match self {
            Outcome::Ok(_) => "ok",
            Outcome::TimedOut => "timed_out",
            Outcome::Shed => "shed",
            Outcome::Failed(_) => "failed",
        }
    }
}

/// A resolved completion: the outcome plus resolution metadata.
#[derive(Debug)]
pub struct Completion {
    /// Terminal outcome.
    pub outcome: Outcome,
    /// Global resolution sequence number (monotone across the scheduler):
    /// within one bucket, resolutions are FIFO in submission order.
    pub order: u64,
    /// Execution attempts consumed (0 for requests resolved without ever
    /// executing, e.g. shed or timed out while queued).
    pub attempts: u32,
}

/// Shared one-shot completion slot. `resolutions` counts resolve calls —
/// the exactly-once suites assert it never reaches 2.
#[derive(Debug)]
pub(crate) struct TicketState {
    slot: Mutex<Option<Completion>>,
    ready: Condvar,
    resolutions: AtomicU32,
}

impl TicketState {
    pub(crate) fn new() -> Arc<TicketState> {
        Arc::new(TicketState {
            slot: Mutex::new(None),
            ready: Condvar::new(),
            resolutions: AtomicU32::new(0),
        })
    }

    /// Resolve the ticket. Returns `false` (and leaves the first outcome
    /// in place) if it was already resolved — the caller counts that as a
    /// duplication bug.
    pub(crate) fn resolve(&self, completion: Completion) -> bool {
        let mut slot = self.slot.lock().unwrap_or_else(|e| e.into_inner());
        self.resolutions.fetch_add(1, Ordering::Relaxed);
        if slot.is_some() {
            return false;
        }
        *slot = Some(completion);
        self.ready.notify_all();
        true
    }
}

/// The caller's handle to one submitted request.
#[derive(Debug)]
pub struct Ticket {
    pub(crate) state: Arc<TicketState>,
    pub(crate) id: u64,
}

impl Ticket {
    /// The request id assigned at submission (unique per scheduler).
    pub fn id(&self) -> u64 {
        self.id
    }

    /// How many times the scheduler resolved this ticket so far. Exposed
    /// for the exactly-once suites; always 0 or 1 in a correct scheduler.
    pub fn resolutions(&self) -> u32 {
        self.state.resolutions.load(Ordering::Relaxed)
    }

    /// Whether the request has resolved (non-blocking).
    pub fn is_resolved(&self) -> bool {
        self.state.slot.lock().unwrap_or_else(|e| e.into_inner()).is_some()
    }

    /// Block until the request resolves and take the completion.
    pub fn wait(self) -> Completion {
        let mut slot = self.state.slot.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            if let Some(c) = slot.take() {
                return c;
            }
            slot = self.state.ready.wait(slot).unwrap_or_else(|e| e.into_inner());
        }
    }

    /// [`Self::wait`] with an upper bound; returns the ticket back on
    /// timeout so the caller may keep waiting.
    pub fn wait_timeout(self, dur: Duration) -> Result<Completion, Ticket> {
        let deadline = Instant::now() + dur;
        {
            let mut slot = self.state.slot.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if let Some(c) = slot.take() {
                    return Ok(c);
                }
                let now = Instant::now();
                let Some(left) = deadline.checked_duration_since(now).filter(|d| !d.is_zero())
                else {
                    break;
                };
                let (guard, _) = self
                    .state
                    .ready
                    .wait_timeout(slot, left)
                    .unwrap_or_else(|e| e.into_inner());
                slot = guard;
            }
        }
        Err(self)
    }
}

/// Why a submission was not accepted. A rejected submission creates no
/// ticket and is **not** part of the conservation accounting.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SubmitError {
    /// The target shard's bounded queue is full — backpressure; the
    /// caller should retry later or shed work upstream.
    QueueFull,
    /// The scheduler is draining and accepts no new work.
    ShuttingDown,
    /// The job's operand shapes are inconsistent (inner-dimension
    /// mismatch).
    BadShape,
}

impl std::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SubmitError::QueueFull => write!(f, "rejected: shard queue full"),
            SubmitError::ShuttingDown => write!(f, "rejected: scheduler shutting down"),
            SubmitError::BadShape => write!(f, "rejected: operand shape mismatch"),
        }
    }
}

impl std::error::Error for SubmitError {}

#[cfg(test)]
mod tests {
    use super::*;

    fn arc_mat(m: usize, n: usize) -> Arc<Mat<f64>> {
        Arc::new(Mat::from_fn(m, n, |i, j| (i * n + j) as f64))
    }

    #[test]
    fn same_shared_b_same_bucket() {
        let b = arc_mat(4, 6);
        let j1 = Job::gemm(KernelVariant::Scalar, 1.0, arc_mat(2, 4), Arc::clone(&b));
        let j2 = Job::gemm(KernelVariant::Scalar, 1.0, arc_mat(5, 4), Arc::clone(&b));
        assert_eq!(BucketKey::of(&j1), BucketKey::of(&j2), "m may differ within a bucket");
    }

    #[test]
    fn distinct_b_or_alpha_or_variant_split_buckets() {
        let b = arc_mat(4, 6);
        let base = Job::gemm(KernelVariant::Scalar, 1.0, arc_mat(2, 4), Arc::clone(&b));
        let other_b = Job::gemm(KernelVariant::Scalar, 1.0, arc_mat(2, 4), arc_mat(4, 6));
        let other_alpha = Job::gemm(KernelVariant::Scalar, 2.0, arc_mat(2, 4), Arc::clone(&b));
        let other_variant = Job::gemm(KernelVariant::Portable, 1.0, arc_mat(2, 4), Arc::clone(&b));
        for j in [&other_b, &other_alpha, &other_variant] {
            assert_ne!(BucketKey::of(&base), BucketKey::of(j));
        }
    }

    #[test]
    fn ozaki_targets_split_buckets() {
        let b = arc_mat(4, 6);
        let a = arc_mat(2, 4);
        let dg = Job::ozaki(OzakiConfig::dgemm_tc(), Arc::clone(&a), Arc::clone(&b));
        let sg = Job::ozaki(OzakiConfig::sgemm_tc(), Arc::clone(&a), Arc::clone(&b));
        assert_ne!(BucketKey::of(&dg), BucketKey::of(&sg));
    }

    #[test]
    fn ticket_resolves_exactly_once() {
        let state = TicketState::new();
        let t = Ticket { state: Arc::clone(&state), id: 7 };
        assert!(!t.is_resolved());
        assert!(state.resolve(Completion { outcome: Outcome::TimedOut, order: 0, attempts: 0 }));
        assert!(!state.resolve(Completion { outcome: Outcome::Shed, order: 1, attempts: 0 }));
        assert_eq!(t.resolutions(), 2, "both calls are counted");
        let c = t.wait();
        assert_eq!(c.outcome.label(), "timed_out", "first resolution wins");
    }

    #[test]
    fn wait_timeout_returns_ticket_when_unresolved() {
        let state = TicketState::new();
        let t = Ticket { state, id: 1 };
        let t = match t.wait_timeout(Duration::from_millis(5)) {
            Err(t) => t,
            Ok(_) => unreachable!("nothing resolved it"),
        };
        assert_eq!(t.id(), 1);
    }

    #[test]
    fn bad_shape_detected() {
        let j = Job::gemm(KernelVariant::Scalar, 1.0, arc_mat(2, 3), arc_mat(4, 6));
        assert!(!j.shape_ok());
        assert!(Job::gemm(KernelVariant::Scalar, 1.0, arc_mat(2, 4), arc_mat(4, 6)).shape_ok());
    }
}
