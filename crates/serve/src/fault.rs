//! Deterministic fault injection for the scheduler.
//!
//! A [`FaultPlan`] decides, for every `(stage, request, attempt)` triple,
//! whether to inject a panic, a transient failure, an artificial delay, or
//! a forced timeout. The decision is a pure function of the plan's seed
//! and the triple — it is derived by reseeding the in-tree
//! [`Rng64`](me_numerics::Rng64) per decision, **never** by advancing a
//! shared stream — so the injected fault set is identical no matter how
//! the OS interleaves shard threads and pool workers. That is what lets
//! the fault suite replay thousands of seeded plans and assert
//! exactly-once completion accounting on every one of them.
//!
//! The plan is plain data owned by [`ServeConfig`](crate::ServeConfig);
//! production schedulers simply leave it unset and pay a single `Option`
//! check per stage.

use std::time::Duration;

/// Scheduler stage at which a fault decision is taken.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultStage {
    /// While the request is being admitted to its shard queue (delays
    /// only: the submitter is the caller's thread).
    Enqueue,
    /// When the shard thread pops the request for execution (forced
    /// timeouts and delays).
    Dequeue,
    /// Inside the request's execution attempt on the shard's pool
    /// (panics, transient failures, delays).
    Execute,
}

impl FaultStage {
    fn salt(self) -> u64 {
        match self {
            FaultStage::Enqueue => 0x45_4e51,
            FaultStage::Dequeue => 0x44_4551,
            FaultStage::Execute => 0x45_5845,
        }
    }
}

/// A single injected fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fault {
    /// No fault at this site.
    None,
    /// Sleep for the given duration before proceeding.
    Delay(Duration),
    /// Fail this execution attempt with a retryable error.
    Transient,
    /// Panic inside the execution attempt (`std::panic::panic_any` with
    /// [`INJECTED_PANIC`] as payload); the scheduler must fail the
    /// request's own handle and keep the shard alive.
    Panic,
    /// Treat the request's deadline as already expired at dequeue.
    ForceTimeout,
}

/// Payload carried by injected panics, so tests (and the scheduler's
/// failure messages) can tell an injected panic from a genuine one.
pub const INJECTED_PANIC: &str = "me-serve: injected fault panic";

/// Per-stage fault probabilities. All probabilities are independent draws
/// in the order panic → transient → force-timeout → delay; the first hit
/// wins, so the expected rates are slightly below the raw knobs when
/// several are nonzero.
#[derive(Debug, Clone, Copy)]
pub struct FaultConfig {
    /// Probability of an injected panic at `Execute`.
    pub p_panic: f64,
    /// Probability of a transient (retryable) failure at `Execute`.
    pub p_transient: f64,
    /// Probability of a forced timeout at `Dequeue`.
    pub p_force_timeout: f64,
    /// Probability of an artificial delay at any stage.
    pub p_delay: f64,
    /// Upper bound on injected delays (drawn uniformly from 0..max).
    pub max_delay: Duration,
}

impl Default for FaultConfig {
    fn default() -> Self {
        FaultConfig {
            p_panic: 0.0,
            p_transient: 0.0,
            p_force_timeout: 0.0,
            p_delay: 0.0,
            max_delay: Duration::from_millis(1),
        }
    }
}

/// A seeded, schedule-independent fault plan.
#[derive(Debug, Clone, Copy)]
pub struct FaultPlan {
    seed: u64,
    cfg: FaultConfig,
}

impl FaultPlan {
    /// Build a plan from a seed and per-stage probabilities.
    pub fn new(seed: u64, cfg: FaultConfig) -> Self {
        FaultPlan { seed, cfg }
    }

    /// The plan's seed (for failure-report labelling).
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Decide the fault for one `(stage, request, attempt)` site. Pure:
    /// the same triple always yields the same fault for the same plan.
    pub fn decide(&self, stage: FaultStage, request_id: u64, attempt: u32) -> Fault {
        let mix = self
            .seed
            .wrapping_mul(0x9e37_79b9_7f4a_7c15)
            .wrapping_add(stage.salt())
            .wrapping_add(request_id.wrapping_mul(0x2545_f491_4f6c_dd1d))
            .wrapping_add(u64::from(attempt) << 17);
        let mut rng = me_numerics::Rng64::seed_from_u64(mix);
        if stage == FaultStage::Execute {
            if rng.chance(self.cfg.p_panic) {
                return Fault::Panic;
            }
            if rng.chance(self.cfg.p_transient) {
                return Fault::Transient;
            }
        }
        if stage == FaultStage::Dequeue && rng.chance(self.cfg.p_force_timeout) {
            return Fault::ForceTimeout;
        }
        if rng.chance(self.cfg.p_delay) {
            let nanos = (self.cfg.max_delay.as_nanos() as u64).max(1);
            return Fault::Delay(Duration::from_nanos(rng.next_u64() % nanos));
        }
        Fault::None
    }

    /// Apply a decided delay fault (no-op for every other variant): the
    /// single sleep point shared by all injection sites.
    pub fn apply_delay(fault: Fault) {
        if let Fault::Delay(d) = fault {
            if !d.is_zero() {
                std::thread::sleep(d);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chaotic() -> FaultConfig {
        FaultConfig {
            p_panic: 0.2,
            p_transient: 0.3,
            p_force_timeout: 0.2,
            p_delay: 0.3,
            max_delay: Duration::from_micros(50),
        }
    }

    #[test]
    fn decisions_are_deterministic() {
        let plan = FaultPlan::new(1234, chaotic());
        for req in 0..64u64 {
            for attempt in 0..4u32 {
                for stage in [FaultStage::Enqueue, FaultStage::Dequeue, FaultStage::Execute] {
                    let a = plan.decide(stage, req, attempt);
                    let b = plan.decide(stage, req, attempt);
                    assert_eq!(a, b, "stage={stage:?} req={req} attempt={attempt}");
                }
            }
        }
    }

    #[test]
    fn stages_restrict_fault_kinds() {
        let plan = FaultPlan::new(99, chaotic());
        for req in 0..512u64 {
            match plan.decide(FaultStage::Enqueue, req, 0) {
                Fault::None | Fault::Delay(_) => {}
                other => panic!("enqueue produced {other:?}"),
            }
            match plan.decide(FaultStage::Dequeue, req, 0) {
                Fault::None | Fault::Delay(_) | Fault::ForceTimeout => {}
                other => panic!("dequeue produced {other:?}"),
            }
        }
    }

    #[test]
    fn attempts_redraw_independently() {
        // A transient failure on attempt 0 must not imply one on attempt
        // 1 — retries have to be able to succeed. With p = 0.3 the chance
        // that some request among 256 never clears in 4 attempts without
        // a single differing draw is vanishing; assert at least one
        // request transitions Transient -> None across attempts.
        let plan = FaultPlan::new(7, FaultConfig { p_transient: 0.3, ..FaultConfig::default() });
        let mut saw_recovery = false;
        for req in 0..256u64 {
            let first = plan.decide(FaultStage::Execute, req, 0);
            let second = plan.decide(FaultStage::Execute, req, 1);
            if first == Fault::Transient && second == Fault::None {
                saw_recovery = true;
            }
        }
        assert!(saw_recovery, "retries never see a different draw");
    }

    #[test]
    fn zero_config_is_silent() {
        let plan = FaultPlan::new(5, FaultConfig::default());
        for req in 0..128u64 {
            for stage in [FaultStage::Enqueue, FaultStage::Dequeue, FaultStage::Execute] {
                assert_eq!(plan.decide(stage, req, 0), Fault::None);
            }
        }
    }

    #[test]
    fn delays_respect_the_bound() {
        let cfg = FaultConfig { p_delay: 1.0, max_delay: Duration::from_micros(10), ..chaotic() };
        let plan = FaultPlan::new(3, FaultConfig { p_panic: 0.0, p_transient: 0.0, p_force_timeout: 0.0, ..cfg });
        for req in 0..256u64 {
            match plan.decide(FaultStage::Enqueue, req, 0) {
                Fault::Delay(d) => assert!(d < Duration::from_micros(10)),
                other => panic!("expected delay, got {other:?}"),
            }
        }
    }
}
