//! Linearizability stress for the Vyukov MPMC ring (`me_serve::MpmcRing`).
//!
//! The scheduler's lock-free arm (DESIGN.md §14) is only as sound as the
//! ring underneath it, so this suite proves the queue-level contract
//! directly, without any scheduler machinery on top:
//!
//! - **Exactly-once**: across N producers × M consumers, every pushed
//!   value is popped exactly once — no loss, no duplication — checked by
//!   multiset accounting over (producer, sequence) pairs.
//! - **Per-producer FIFO**: a single consumer observes each producer's
//!   values in strictly increasing sequence order (the Vyukov ring is
//!   linearizable per slot; with one consumer, per-producer order is
//!   total).
//! - **Edge storms**: capacity-2 rings hammered at the full edge and
//!   empty edge, where the seq-versus-pos `dif` arithmetic and slot
//!   recycling are most fragile.
//! - **Model equivalence**: ≥1000 seeded random push/pop interleavings
//!   replayed against a `VecDeque` reference model.

use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;

use me_numerics::Rng64;
use me_serve::MpmcRing;

/// One tagged value: which producer made it, and its per-producer seq.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct Tagged {
    producer: u32,
    seq: u64,
}

/// Run `producers`×`consumers` threads over one ring of `capacity`,
/// pushing `per_producer` tagged values each (spinning on full), popping
/// until every value is accounted for. Returns each consumer's pop
/// stream in arrival order.
fn stress(
    producers: u32,
    consumers: u32,
    capacity: usize,
    per_producer: u64,
) -> Vec<Vec<Tagged>> {
    let ring: Arc<MpmcRing<Tagged>> = Arc::new(MpmcRing::new(capacity));
    let done = Arc::new(AtomicBool::new(false));
    let mut prod_handles = Vec::new();
    for producer in 0..producers {
        let ring = Arc::clone(&ring);
        prod_handles.push(thread::spawn(move || {
            for seq in 0..per_producer {
                let mut v = Tagged { producer, seq };
                loop {
                    match ring.push(v) {
                        Ok(()) => break,
                        Err(back) => {
                            v = back;
                            thread::yield_now();
                        }
                    }
                }
            }
        }));
    }
    let mut cons_handles = Vec::new();
    for _ in 0..consumers {
        let ring = Arc::clone(&ring);
        let done = Arc::clone(&done);
        cons_handles.push(thread::spawn(move || {
            let mut seen = Vec::new();
            loop {
                match ring.pop() {
                    Some(v) => seen.push(v),
                    None => {
                        if done.load(Ordering::Acquire) {
                            // Producers are finished; one final drain pass
                            // races the other consumers for leftovers.
                            while let Some(v) = ring.pop() {
                                seen.push(v);
                            }
                            return seen;
                        }
                        thread::yield_now();
                    }
                }
            }
        }));
    }
    for h in prod_handles {
        h.join().expect("producer panicked");
    }
    done.store(true, Ordering::Release);
    cons_handles
        .into_iter()
        .map(|h| h.join().expect("consumer panicked"))
        .collect()
}

/// Assert the exactly-once contract over the union of all pop streams.
fn assert_exactly_once(streams: &[Vec<Tagged>], producers: u32, per_producer: u64) {
    let mut counts: HashMap<Tagged, u64> = HashMap::new();
    for stream in streams {
        for &v in stream {
            *counts.entry(v).or_insert(0) += 1;
        }
    }
    let expected = producers as u64 * per_producer;
    let total: u64 = streams.iter().map(|s| s.len() as u64).sum();
    assert_eq!(total, expected, "popped count != pushed count");
    for producer in 0..producers {
        for seq in 0..per_producer {
            let v = Tagged { producer, seq };
            assert_eq!(
                counts.get(&v).copied().unwrap_or(0),
                1,
                "value {v:?} not popped exactly once"
            );
        }
    }
}

#[test]
fn exactly_once_across_widths() {
    // (producers, consumers) grids at the issue's widths; capacity far
    // smaller than the traffic so wraparound recycles every slot many
    // times over.
    for &(producers, consumers) in
        &[(1u32, 1u32), (2, 2), (8, 8), (32, 4), (4, 32), (32, 32)]
    {
        let per_producer = 20_000 / u64::from(producers).max(1);
        let streams = stress(producers, consumers, 64, per_producer);
        assert_exactly_once(&streams, producers, per_producer);
    }
}

#[test]
fn single_consumer_sees_per_producer_fifo() {
    for &producers in &[1u32, 2, 8, 32] {
        let streams = stress(producers, 1, 16, 4_000 / u64::from(producers));
        assert_eq!(streams.len(), 1);
        let mut last: HashMap<u32, u64> = HashMap::new();
        for v in &streams[0] {
            if let Some(&prev) = last.get(&v.producer) {
                assert!(
                    v.seq > prev,
                    "producer {} reordered: {} after {}",
                    v.producer,
                    v.seq,
                    prev
                );
            }
            last.insert(v.producer, v.seq);
        }
    }
}

#[test]
fn full_edge_storm_on_capacity_two() {
    // Capacity rounds to 2; producers outnumber slots 8:1 so nearly every
    // push lands on the full edge and nearly every pop on a freshly
    // recycled slot.
    let streams = stress(16, 2, 2, 2_000);
    assert_exactly_once(&streams, 16, 2_000);
}

#[test]
fn empty_edge_storm_on_capacity_two() {
    // Consumers outnumber producers 8:1: the ring is empty almost always
    // and pops race each other for each single published slot.
    let streams = stress(2, 16, 2, 4_000);
    assert_exactly_once(&streams, 2, 4_000);
}

#[test]
fn seeded_interleavings_match_vecdeque_model() {
    // ≥1000 seeds: single-threaded random push/pop schedules against the
    // reference model, over the full width sweep. Deterministic, so any
    // failure names its seed.
    for seed in 0..1_200u64 {
        let mut rng = Rng64::seed_from_u64(seed);
        let capacity = [1usize, 2, 8, 32][(seed % 4) as usize];
        let ring: MpmcRing<u64> = MpmcRing::new(capacity);
        let mut model: VecDeque<u64> = VecDeque::new();
        let mut next = 0u64;
        for _ in 0..256 {
            if rng.next_u64() % 2 == 0 {
                match ring.push(next) {
                    Ok(()) => {
                        assert!(
                            model.len() < ring.capacity(),
                            "seed {seed}: push succeeded on a full model"
                        );
                        model.push_back(next);
                        next += 1;
                    }
                    Err(v) => {
                        assert_eq!(v, next, "seed {seed}: rejected push returned wrong value");
                        assert_eq!(
                            model.len(),
                            ring.capacity(),
                            "seed {seed}: push failed while model had room"
                        );
                    }
                }
            } else {
                let got = ring.pop();
                let want = model.pop_front();
                assert_eq!(got, want, "seed {seed}: pop diverged from model");
            }
            assert_eq!(
                ring.is_empty(),
                model.is_empty(),
                "seed {seed}: emptiness diverged"
            );
        }
        // Drain and compare the tails.
        while let Some(want) = model.pop_front() {
            assert_eq!(ring.pop(), Some(want), "seed {seed}: tail diverged");
        }
        assert_eq!(ring.pop(), None, "seed {seed}: ring not empty after drain");
    }
}
