//! Prepacked-B weight-cache suite: eviction order, ref-count safety,
//! counter conservation, and the cached-vs-fresh bitwise differential.
//!
//! The cache's contract (DESIGN.md §12) has four load-bearing claims,
//! each pinned by one test here:
//!
//! 1. **LRU order** — eviction removes the least-recently-*used* entry,
//!    where a hit counts as a use, observable via `keys_lru_order`.
//! 2. **Ref-count safety** — an `Arc<PackedB>` handed out by a lookup
//!    stays valid and numerically correct after the cache evicts the
//!    entry mid-compute.
//! 3. **Counter conservation** — `hits + misses == lookups`, including
//!    oversized never-cached packs and stale-`kc` invalidations.
//! 4. **Bitwise identity** — a scheduler with the cache enabled produces
//!    byte-identical results to one with the cache disabled and to the
//!    serial fresh-pack reference, across every runnable kernel variant.
//!
//! The blocking override installed by the stale-`kc` test is process
//! global, so every test that packs or compares GEMM bytes serializes
//! through one file-local gate mutex.

use std::sync::{Arc, Mutex, MutexGuard, OnceLock};

use me_linalg::{
    available_variants, blocking_for, gemm_tiled_prepacked_with, gemm_tiled_with, pack_b_matrix,
    set_blocking_override, Blocking, KernelVariant, Mat,
};
use me_numerics::Rng64;
use me_serve::{BucketKey, Job, Outcome, Scheduler, ServeConfig};
use me_serve::WeightCache;

/// Serialize tests: the stale-kc case mutates the process-wide blocking
/// override, which every pack and every fresh GEMM reads.
fn gate() -> MutexGuard<'static, ()> {
    static GATE: OnceLock<Mutex<()>> = OnceLock::new();
    GATE.get_or_init(|| Mutex::new(()))
        .lock()
        .unwrap_or_else(|e| e.into_inner())
}

fn mat(rows: usize, cols: usize, seed: u64) -> Arc<Mat<f64>> {
    let mut rng = Rng64::seed_from_u64(seed);
    Arc::new(Mat::from_fn(rows, cols, |_, _| rng.range_f64(-1.0, 1.0)))
}

fn key_of(b: &Arc<Mat<f64>>, variant: KernelVariant) -> BucketKey {
    BucketKey::Gemm {
        b_ident: Arc::as_ptr(b) as usize,
        k: b.rows(),
        n: b.cols(),
        alpha_bits: 1.0f64.to_bits(),
        variant,
    }
}

#[test]
fn lru_eviction_follows_recency_not_insertion() {
    let _g = gate();
    let variant = KernelVariant::Scalar;
    let (k, n) = (48, 40);
    let b1 = mat(k, n, 0x11);
    let b2 = mat(k, n, 0x22);
    let b3 = mat(k, n, 0x33);
    let (k1, k2, k3) = (key_of(&b1, variant), key_of(&b2, variant), key_of(&b3, variant));

    // All three Bs share a shape, so every entry is the same size; a
    // capacity of exactly two entries forces the third insert to evict.
    let entry_bytes = pack_b_matrix(b1.as_ref(), blocking_for(variant)).bytes();
    let cache = WeightCache::new(2 * entry_bytes);

    let _ = cache.get_or_pack(k1, &b1, variant); // miss
    let _ = cache.get_or_pack(k2, &b2, variant); // miss
    assert_eq!(cache.keys_lru_order(), vec![k1, k2], "insertion order is the initial recency");

    let _ = cache.get_or_pack(k1, &b1, variant); // hit: k1 becomes most recent
    assert_eq!(cache.keys_lru_order(), vec![k2, k1], "a hit must refresh recency");

    let _ = cache.get_or_pack(k3, &b3, variant); // miss: evicts k2, NOT k1
    assert_eq!(
        cache.keys_lru_order(),
        vec![k1, k3],
        "eviction must take the least-recently-used entry (k2), not the oldest insert (k1)"
    );

    let stats = cache.stats();
    assert_eq!(stats.hits, 1);
    assert_eq!(stats.misses, 3);
    assert_eq!(stats.evictions, 1);
    assert_eq!(stats.entries, 2);
    assert_eq!(stats.bytes_used, 2 * entry_bytes as u64, "two equal-size entries resident");
}

#[test]
fn evicted_entry_stays_valid_mid_compute() {
    let _g = gate();
    let variant = KernelVariant::Scalar;
    let (m, k, n) = (5, 64, 56);
    let a = mat(m, k, 0xA1);
    let b1 = mat(k, n, 0xB1);
    let b2 = mat(k, n, 0xB2);

    // Capacity of one entry: fetching b2 evicts b1 while we still hold
    // b1's panels.
    let entry_bytes = pack_b_matrix(b1.as_ref(), blocking_for(variant)).bytes();
    let cache = WeightCache::new(entry_bytes);

    let held = cache.get_or_pack(key_of(&b1, variant), &b1, variant);
    let _ = cache.get_or_pack(key_of(&b2, variant), &b2, variant);
    assert_eq!(cache.len(), 1, "one-entry capacity must have evicted b1");
    assert_eq!(cache.stats().evictions, 1);
    assert_eq!(
        cache.keys_lru_order(),
        vec![key_of(&b2, variant)],
        "only b2 remains resident"
    );

    // The evicted panels must still compute, bitwise equal to a fresh
    // pack: the Arc we hold is the only thing keeping them alive.
    let mut cached = Mat::zeros(m, n);
    gemm_tiled_prepacked_with(variant, 1.0, a.as_ref(), held.as_ref(), 0.0, &mut cached);
    let mut fresh = Mat::zeros(m, n);
    gemm_tiled_with(variant, 1.0, a.as_ref(), b1.as_ref(), 0.0, &mut fresh);
    assert_eq!(
        cached.as_slice(),
        fresh.as_slice(),
        "post-eviction compute must stay bitwise identical to a fresh pack"
    );
}

#[test]
fn hit_miss_counters_conserve_across_all_lookup_paths() {
    let _g = gate();
    let variant = KernelVariant::Scalar;
    let (k, n) = (32, 24);
    let b_small = mat(k, n, 0xC1);
    let b_big = mat(256, 256, 0xC2);
    let small_bytes = pack_b_matrix(b_small.as_ref(), blocking_for(variant)).bytes();
    let cache = WeightCache::new(small_bytes);
    let mut lookups = 0u64;

    // Cold miss, then repeated hits.
    for _ in 0..5 {
        let _ = cache.get_or_pack(key_of(&b_small, variant), &b_small, variant);
        lookups += 1;
    }

    // Oversized B: packs, never inserted, every lookup a miss.
    for _ in 0..2 {
        let p = cache.get_or_pack(key_of(&b_big, variant), &b_big, variant);
        assert!(p.bytes() > cache.capacity_bytes(), "test premise: b_big exceeds capacity");
        lookups += 1;
    }
    assert_eq!(cache.len(), 1, "the oversized pack must never become resident");

    // Stale kc: change the variant's blocking, the resident entry is
    // invalidated (miss + eviction), then the repacked entry hits again.
    let tuned = Blocking { kc: 16, ..Blocking::DEFAULT }.normalized();
    set_blocking_override(variant, Some(tuned));
    let repacked = cache.get_or_pack(key_of(&b_small, variant), &b_small, variant);
    lookups += 1;
    assert_eq!(repacked.blocking().kc, 16, "repack must use the new blocking");
    let _ = cache.get_or_pack(key_of(&b_small, variant), &b_small, variant);
    lookups += 1;
    set_blocking_override(variant, None);

    let stats = cache.stats();
    assert_eq!(
        stats.hits + stats.misses,
        lookups,
        "every lookup is exactly one hit or one miss: {stats:?}"
    );
    assert_eq!(stats.hits, 5, "4 warm small hits + 1 post-repack hit");
    assert_eq!(stats.misses, 4, "cold + 2 oversized + 1 stale-kc invalidation");
    assert_eq!(stats.evictions, 1, "only the stale-kc invalidation evicts here");
    assert!(
        stats.pack_bytes_saved >= 4 * small_bytes as u64,
        "hits must account the repack work they saved"
    );
}

/// Run one request mix through a scheduler and return the output bytes
/// per request, in submission order.
fn run_requests(
    sched: &Scheduler,
    requests: &[(KernelVariant, Arc<Mat<f64>>, Arc<Mat<f64>>)],
) -> Vec<Vec<f64>> {
    let tickets: Vec<_> = requests
        .iter()
        .map(|(v, a, b)| {
            sched
                .submit(Job::gemm(*v, 1.0, Arc::clone(a), Arc::clone(b)))
                .expect("queue sized for the whole mix")
        })
        .collect();
    tickets
        .into_iter()
        .map(|t| match t.wait().outcome {
            Outcome::Ok(c) => c.as_slice().to_vec(),
            other => panic!("request must complete: {other:?}"),
        })
        .collect()
}

#[test]
fn cached_scheduler_matches_uncached_and_serial_bitwise() {
    let _g = gate();
    let variants = available_variants();
    // Shared weight matrices (steady-state inference traffic) plus one
    // per-request B (cold every time) per variant.
    let shapes = [(1usize, 96usize, 80usize), (2, 64, 96), (3, 80, 64)];
    let mut requests: Vec<(KernelVariant, Arc<Mat<f64>>, Arc<Mat<f64>>)> = Vec::new();
    for (vi, &variant) in variants.iter().enumerate() {
        for (si, &(m, k, n)) in shapes.iter().enumerate() {
            let seed = (vi as u64) << 16 | (si as u64) << 8;
            let weight = mat(k, n, seed ^ 0xB00);
            for rep in 0..4u64 {
                requests.push((variant, mat(m, k, seed + rep), Arc::clone(&weight)));
            }
            requests.push((variant, mat(m, k, seed + 9), mat(k, n, seed ^ 0xC01)));
        }
    }

    let config = |cache_bytes: usize| ServeConfig {
        shards: 2,
        shard_threads: 2,
        queue_capacity: requests.len(),
        batch_max: 4,
        weight_cache_bytes: cache_bytes,
        ..Default::default()
    };

    // Two passes through one scheduler: pass 1 warms the cache (each
    // bucket coalesces into one batch, so its lookup is the cold miss),
    // pass 2 replays the same Arcs so every lookup hits a live entry.
    let cached_sched = Scheduler::new(config(64 << 20));
    let cached = run_requests(&cached_sched, &requests);
    let warmed = run_requests(&cached_sched, &requests);
    assert_eq!(cached, warmed, "a warm cache must not change a single result byte");
    assert!(cached_sched.cache_stats().is_some(), "an enabled cache exposes live stats");
    let cached_stats = cached_sched.shutdown();

    let uncached_sched = Scheduler::new(config(0));
    let uncached = run_requests(&uncached_sched, &requests);
    assert!(uncached_sched.cache_stats().is_none(), "cache_stats is None when disabled");
    let uncached_stats = uncached_sched.shutdown();

    for (i, ((c, u), (variant, a, b))) in
        cached.iter().zip(&uncached).zip(&requests).enumerate()
    {
        assert_eq!(c, u, "request {i} ({variant:?}): cached and uncached bytes diverge");
        let mut serial = Mat::zeros(a.rows(), b.cols());
        gemm_tiled_with(*variant, 1.0, a.as_ref(), b.as_ref(), 0.0, &mut serial);
        assert_eq!(
            c,
            serial.as_slice(),
            "request {i} ({variant:?}): cached bytes diverge from the serial reference"
        );
    }

    assert!(cached_stats.is_conserved() && uncached_stats.is_conserved());
    assert!(
        cached_stats.cache_hits > 0,
        "repeated shared-weight traffic must hit: {cached_stats:?}"
    );
    assert!(cached_stats.cache_misses > 0, "cold keys must miss: {cached_stats:?}");
    assert_eq!(
        uncached_stats.cache_hits + uncached_stats.cache_misses,
        0,
        "a disabled cache must report zero lookups"
    );
}
