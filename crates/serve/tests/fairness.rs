//! Weighted-fair admission and SLO-percentile property tests.
//!
//! The ring arm's deficit round-robin (DESIGN.md §14) promises
//! *work-conserving weighted fairness*: when several tenants are
//! backlogged, dequeues converge to the configured weight ratio; when
//! only one tenant has work, it gets the full shard (no idling on
//! credit). These tests pin both properties deterministically — one
//! shard, one thread, a large "plug" job to build the backlog — so the
//! dequeue order is a pure function of the DRR state, not of thread
//! timing. The SLO tests pin the percentile plumbing end-to-end:
//! snapshot p50/p95/p99 come from the same histogram the scheduler
//! records into, and quantiles are ordered and conservative.

use std::sync::Arc;
use std::time::Duration;

use me_linalg::{KernelVariant, Mat};
use me_numerics::Rng64;
use me_serve::{Job, Outcome, QueueKind, Scheduler, ServeConfig, TenantId, Ticket};

fn mat(m: usize, n: usize, seed: u64) -> Arc<Mat<f64>> {
    let mut rng = Rng64::seed_from_u64(seed);
    Arc::new(Mat::from_fn(m, n, |_, _| rng.range_f64(-1.0, 1.0)))
}

/// Build a single-shard, single-thread ring scheduler with the given
/// weights and a queue deep enough for the whole test backlog.
fn plugged_scheduler(weights: Vec<u64>) -> Scheduler {
    Scheduler::new(ServeConfig {
        shards: 1,
        shard_threads: 1,
        queue_capacity: 1024,
        batch_max: 1, // one dequeue per DRR decision: order == fairness
        queue: Some(QueueKind::Ring),
        tenant_weights: weights,
        ..Default::default()
    })
}

/// Occupy the single shard thread long enough for the caller to build a
/// backlog behind it. 384³ scalar FLOPs dwarf the microseconds the
/// submit loop needs; the short sleep afterwards lets the shard thread
/// dequeue the plug before the backlog starts arriving, so every
/// backlog request resolves strictly after it.
fn submit_plug(sched: &Scheduler) -> Ticket {
    let n = 384;
    let plug = sched
        .submit(Job::gemm(KernelVariant::Scalar, 1.0, mat(n, n, 0xa1), mat(n, n, 0xa2)))
        .expect("plug fits");
    std::thread::sleep(Duration::from_millis(10));
    plug
}

/// Resolution order stamps for a batch of tickets, tagged by tenant.
fn orders(tickets: Vec<(u32, Ticket)>) -> Vec<(u64, u32)> {
    let mut out: Vec<(u64, u32)> = tickets
        .into_iter()
        .map(|(tenant, t)| {
            let c = t.wait();
            assert!(matches!(c.outcome, Outcome::Ok(_)), "tenant {tenant}: {:?}", c.outcome);
            (c.order, tenant)
        })
        .collect();
    out.sort_unstable();
    out
}

/// Two backlogged tenants with weights 1:3 are served ≈1:3.
///
/// While the plug executes, 200 requests per tenant pile up in the ring;
/// once it finishes, the DRR dequeues from a fully backlogged state. In
/// any window where both tenants still have work, weight-3 tenant 1 must
/// receive 3 of every 4 grants (±banked-credit jitter of one quantum).
/// Over the first 160 post-plug resolutions the exact DRR count is 120;
/// the assertion allows [100, 140] so scheduler-internal batching of the
/// ring drain cannot flake it.
#[test]
fn two_tenants_converge_to_weight_ratio_under_saturation() {
    let sched = plugged_scheduler(vec![1, 3]);
    assert_eq!(sched.tenant_weights(), &[1, 3]);
    // Pre-build every matrix so the submit loop is tight (pure pushes).
    let b0 = mat(3, 2, 100);
    let b1 = mat(3, 2, 200);
    let a0: Vec<_> = (0..200).map(|i| mat(2, 3, 1_000 + i)).collect();
    let a1: Vec<_> = (0..200).map(|i| mat(2, 3, 2_000 + i)).collect();
    let plug = submit_plug(&sched);
    let mut tickets = Vec::new();
    for i in 0..200usize {
        for (tenant, a, b) in [(0u32, &a0[i], &b0), (1u32, &a1[i], &b1)] {
            let job = Job::gemm(KernelVariant::Scalar, 1.0, Arc::clone(a), Arc::clone(b))
                .with_tenant(TenantId(tenant));
            tickets.push((tenant, sched.submit(job).expect("backlog fits")));
        }
    }
    let plug_order = plug.wait().order;
    let resolved = orders(tickets);
    let post_plug: Vec<u32> = resolved
        .iter()
        .filter(|(order, _)| *order > plug_order)
        .map(|&(_, tenant)| tenant)
        .collect();
    assert_eq!(post_plug.len(), 400, "every backlogged request resolves");
    let window = &post_plug[..160];
    let t1 = window.iter().filter(|&&t| t == 1).count();
    assert!(
        (100..=140).contains(&t1),
        "weight-3 tenant got {t1}/160 grants in the saturated window; \
         expected ≈120 (DRR 1:3), window head: {:?}",
        &window[..24.min(window.len())]
    );
    let stats = sched.shutdown();
    assert!(stats.is_conserved(), "{stats:?}");
}

/// Work conservation: a sole backlogged tenant is served strictly FIFO
/// at full rate — a low weight never idles the shard or reorders a
/// single-tenant stream.
#[test]
fn sole_backlogged_tenant_is_served_fifo() {
    // Tenant 0 has the minimum weight in a 1:7 split, and is the only
    // one submitting.
    let sched = plugged_scheduler(vec![1, 7]);
    let b = mat(3, 2, 300);
    let a: Vec<_> = (0..120).map(|i| mat(2, 3, 3_000 + i)).collect();
    let plug = submit_plug(&sched);
    let tickets: Vec<(u32, Ticket)> = a
        .iter()
        .map(|a| {
            let job = Job::gemm(KernelVariant::Scalar, 1.0, Arc::clone(a), Arc::clone(&b))
                .with_tenant(TenantId(0));
            (0u32, sched.submit(job).expect("fits"))
        })
        .collect();
    let plug_order = plug.wait().order;
    let resolved = orders(tickets);
    // Submission order == resolution order for the post-plug stream
    // (orders() sorted by stamp; with one bucket and batch_max 1 the
    // stamps must be consecutive and increasing).
    let post: Vec<u64> = resolved
        .iter()
        .map(|&(order, _)| order)
        .filter(|&o| o > plug_order)
        .collect();
    assert_eq!(post.len(), 120);
    for pair in post.windows(2) {
        assert_eq!(pair[1], pair[0] + 1, "single-tenant stream reordered or interleaved");
    }
    let stats = sched.shutdown();
    assert!(stats.is_conserved(), "{stats:?}");
}

/// Per-tenant books balance and sum to the global books, and tenant ids
/// beyond the weight table fold modulo the slot count.
#[test]
fn tenant_books_balance_and_fold_modulo() {
    let sched = plugged_scheduler(vec![2, 1, 1]);
    let b = mat(3, 2, 400);
    let tickets: Vec<_> = (0..90u32)
        .map(|i| {
            // Tenant ids 0..9 fold into 3 slots: id % 3.
            let job = Job::gemm(KernelVariant::Scalar, 1.0, mat(2, 3, 4_000 + u64::from(i)), Arc::clone(&b))
                .with_tenant(TenantId(i % 9));
            sched.submit(job).expect("fits")
        })
        .collect();
    for t in tickets {
        t.wait();
    }
    let tenants = sched.tenant_stats();
    assert_eq!(tenants.len(), 3);
    let mut sum_enq = 0u64;
    let mut sum_ok = 0u64;
    for ts in &tenants {
        assert!(ts.is_conserved(), "tenant {}: {ts:?}", ts.tenant);
        assert_eq!(ts.enqueued, 30, "ids fold modulo 3: {ts:?}");
        sum_enq += ts.enqueued;
        sum_ok += ts.completed_ok;
    }
    let stats = sched.shutdown();
    assert_eq!(sum_enq, stats.enqueued, "tenant books must sum to global books");
    assert_eq!(sum_ok, stats.completed_ok);
    assert!(stats.is_conserved(), "{stats:?}");
}

/// The snapshot's SLO percentiles are wired to the recorded latencies:
/// count matches resolutions, the quantiles are ordered, every recorded
/// latency is ≤ the p100-style upper bound implied by the histogram, and
/// both queue arms expose the same plumbing.
#[test]
fn snapshot_percentiles_track_recorded_latencies() {
    for kind in [QueueKind::Mutex, QueueKind::Ring] {
        let sched = Scheduler::new(ServeConfig {
            shards: 1,
            shard_threads: 2,
            queue_capacity: 256,
            queue: Some(kind),
            ..Default::default()
        });
        let b = mat(4, 3, 500);
        let tickets: Vec<_> = (0..64u64)
            .map(|i| {
                sched
                    .submit(Job::gemm(KernelVariant::Scalar, 1.0, mat(2, 4, 5_000 + i), Arc::clone(&b)))
                    .expect("fits")
            })
            .collect();
        for t in tickets {
            assert!(matches!(t.wait().outcome, Outcome::Ok(_)));
        }
        let hist = sched.latency_histogram();
        let stats = sched.shutdown();
        assert!(stats.is_conserved(), "{kind:?}: {stats:?}");
        assert_eq!(stats.latency_count, 64, "{kind:?}: one latency sample per resolution");
        assert!(hist.is_consistent(), "{kind:?}");
        assert_eq!(hist.count, 64, "{kind:?}");
        assert!(
            stats.p50_ns <= stats.p95_ns && stats.p95_ns <= stats.p99_ns,
            "{kind:?}: quantiles out of order: {stats:?}"
        );
        assert!(stats.p50_ns > 0, "{kind:?}: a real GEMM takes nonzero time");
        assert_eq!(stats.p50_ns, hist.quantile(0.50), "{kind:?}: snapshot p50 is the histogram's");
        assert_eq!(stats.p99_ns, hist.quantile(0.99), "{kind:?}: snapshot p99 is the histogram's");
    }
}
