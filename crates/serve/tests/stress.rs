//! Oversubscription stress: shards × pool width well beyond the
//! machine's cores, a 10k mixed-shape request storm from concurrent
//! submitters, and the invariants that must survive it — the drain
//! completes (no deadlock), the accounting balances to the request, and
//! the ready-queue high-water never exceeds the configured capacity.

use std::sync::Arc;

use me_linalg::{KernelVariant, Mat};
use me_ozaki::OzakiConfig;
use me_serve::{Job, Scheduler, ServeConfig, SubmitError, TenantId};

fn mat(m: usize, n: usize, seed: u64) -> Arc<Mat<f64>> {
    let mut rng = me_numerics::Rng64::seed_from_u64(seed);
    Arc::new(Mat::from_fn(m, n, |_, _| rng.range_f64(-1.0, 1.0)))
}

const STORM: usize = 10_000;
const SUBMITTERS: usize = 4;
const CAPACITY: usize = 256;

#[test]
fn ten_k_storm_drains_without_deadlock() {
    let sched = Arc::new(Scheduler::new(ServeConfig {
        shards: 4,
        shard_threads: 2, // 4 × 2 pool lanes ≫ this container's cores
        queue_capacity: CAPACITY,
        batch_max: 32,
        ..Default::default()
    }));
    assert_eq!(sched.shards(), 4);

    // Four shared-B weight sets so the storm populates several GEMM
    // buckets, plus an Ozaki bucket every 16th request.
    let k = 16usize;
    let n = 16usize;
    let weights: Vec<Arc<Mat<f64>>> = (0..4).map(|i| mat(k, n, 900 + i)).collect();

    let mut handles = Vec::new();
    for s in 0..SUBMITTERS {
        let sched = Arc::clone(&sched);
        let weights = weights.clone();
        handles.push(std::thread::spawn(move || {
            let mut accepted = 0u64;
            let mut rejected = 0u64;
            let mut resolved = 0u64;
            let mut tickets = Vec::new();
            for i in 0..STORM / SUBMITTERS {
                let seed = (s * STORM + i) as u64;
                let m = 1 + i % 8;
                let job = if i % 16 == 15 {
                    Job::ozaki(OzakiConfig::dgemm_tc(), mat(m, k, seed), mat(k, n, seed ^ 1))
                } else {
                    let b = Arc::clone(&weights[i % weights.len()]);
                    let alpha = if i % 2 == 0 { 1.0 } else { 0.5 };
                    Job::gemm(KernelVariant::Scalar, alpha, mat(m, k, seed), b)
                };
                match sched.submit(job) {
                    Ok(t) => {
                        accepted += 1;
                        tickets.push(t);
                    }
                    Err(SubmitError::QueueFull) => rejected += 1,
                    Err(e) => panic!("unexpected submit error: {e}"),
                }
                // Bound per-thread ticket backlog so waits interleave
                // with submissions (more realistic than wait-at-end).
                if tickets.len() >= 512 {
                    for t in tickets.drain(..) {
                        assert!(t.resolutions() <= 1);
                        t.wait();
                        resolved += 1;
                    }
                }
            }
            for t in tickets {
                t.wait();
                resolved += 1;
            }
            (accepted, rejected, resolved)
        }));
    }
    let mut accepted = 0u64;
    let mut rejected = 0u64;
    let mut resolved = 0u64;
    for h in handles {
        let (a, r, w) = h.join().expect("submitter panicked");
        accepted += a;
        rejected += r;
        resolved += w;
    }
    assert_eq!(accepted + rejected, STORM as u64, "every submission accounted for");
    assert_eq!(resolved, accepted, "every accepted request resolved");

    let sched = Arc::try_unwrap(sched).map_err(|_| "submitters done").expect("sole owner");
    let stats = sched.shutdown();
    assert!(stats.is_conserved(), "{stats:?}");
    assert_eq!(stats.enqueued, accepted);
    assert_eq!(stats.rejected_full, rejected);
    assert!(
        stats.queue_high_water <= CAPACITY as u64,
        "high-water {} exceeded capacity {CAPACITY}",
        stats.queue_high_water
    );
    assert_eq!(stats.double_resolves, 0);
    // A 10k storm against a single-digit drain rate must coalesce: the
    // batching layer is what this scheduler exists for.
    assert!(
        stats.max_batch >= 2,
        "storm never coalesced a batch: {stats:?}"
    );
}

/// Snapshot monotonicity: while submitters hammer a live scheduler,
/// successive unlocked-read snapshots never show a cumulative counter
/// decrease and never show `resolved() > enqueued` — globally or per
/// tenant. This is the observable contract of the stats memory-ordering
/// protocol (outcome bumps are `Release`, snapshots `Acquire` the
/// outcome counters *first*; see `stats.rs`): a torn or reordered read
/// would surface here as a dip or an over-resolved book.
#[test]
fn snapshots_are_monotone_while_hammered() {
    let sched = Arc::new(Scheduler::new(ServeConfig {
        shards: 2,
        shard_threads: 2,
        queue_capacity: CAPACITY,
        batch_max: 8,
        tenant_weights: vec![1, 2],
        ..Default::default()
    }));
    let k = 12usize;
    let b = mat(k, k, 7_000);
    let mut handles = Vec::new();
    for s in 0..SUBMITTERS as u64 {
        let sched = Arc::clone(&sched);
        let b = Arc::clone(&b);
        handles.push(std::thread::spawn(move || {
            for i in 0..800u64 {
                let job = Job::gemm(
                    KernelVariant::Scalar,
                    1.0,
                    mat(1 + (i % 4) as usize, k, s * 10_000 + i),
                    Arc::clone(&b),
                )
                .with_tenant(TenantId((i % 2) as u32));
                match sched.submit(job) {
                    Ok(t) => drop(t), // resolution still counted; no need to wait
                    Err(SubmitError::QueueFull) => std::thread::yield_now(),
                    Err(e) => panic!("unexpected submit error: {e}"),
                }
            }
        }));
    }
    let mut prev = sched.stats();
    let mut prev_tenants = sched.tenant_stats();
    while handles.iter().any(|h| !h.is_finished()) {
        let cur = sched.stats();
        for (label, a, b) in [
            ("enqueued", prev.enqueued, cur.enqueued),
            ("completed_ok", prev.completed_ok, cur.completed_ok),
            ("timed_out", prev.timed_out, cur.timed_out),
            ("shed", prev.shed, cur.shed),
            ("failed", prev.failed, cur.failed),
            ("rejected_full", prev.rejected_full, cur.rejected_full),
            ("retries", prev.retries, cur.retries),
            ("latency_count", prev.latency_count, cur.latency_count),
        ] {
            assert!(b >= a, "cumulative counter {label} decreased: {a} -> {b}");
        }
        assert!(
            cur.resolved() <= cur.enqueued,
            "snapshot shows more resolutions than admissions: {cur:?}"
        );
        let cur_tenants = sched.tenant_stats();
        for (p, c) in prev_tenants.iter().zip(&cur_tenants) {
            assert!(c.enqueued >= p.enqueued, "tenant {} enqueued dipped", c.tenant);
            assert!(c.completed_ok >= p.completed_ok, "tenant {} ok dipped", c.tenant);
            assert!(
                c.resolved() <= c.enqueued,
                "tenant {} over-resolved in snapshot: {c:?}",
                c.tenant
            );
        }
        prev = cur;
        prev_tenants = cur_tenants;
    }
    for h in handles {
        h.join().expect("submitter panicked");
    }
    let sched = Arc::try_unwrap(sched).map_err(|_| "submitters done").expect("sole owner");
    let stats = sched.shutdown();
    assert!(stats.is_conserved(), "{stats:?}");
}

/// Drop-head shedding keeps the ready queue at the watermark: park the
/// shard behind a deliberately large head request, pile small requests
/// behind it, and the oldest of the backlog must resolve Shed while the
/// books still balance.
#[test]
fn shedding_bounds_the_backlog() {
    let sched = Scheduler::new(ServeConfig {
        shards: 1,
        shard_threads: 1,
        queue_capacity: 64,
        shed_watermark: 4,
        batch_max: 8,
        ..Default::default()
    });
    let k = 96usize;
    let b = mat(k, k, 1);
    // Head: big enough to hold the shard for many milliseconds in a
    // debug build, so the 32 followers are all queued when it finishes.
    let head = sched
        .submit(Job::gemm(KernelVariant::Scalar, 1.0, mat(k, k, 2), Arc::clone(&b)))
        .expect("empty queue accepts the head");
    let followers: Vec<_> = (0..32)
        .map(|i| {
            sched
                .submit(Job::gemm(KernelVariant::Scalar, 1.0, mat(1, k, 10 + i), Arc::clone(&b)))
                .expect("64-deep queue holds 32 followers")
        })
        .collect();
    head.wait();
    let stats = sched.shutdown();
    assert!(stats.is_conserved(), "{stats:?}");
    assert!(stats.shed > 0, "backlog of 32 over watermark 4 must shed: {stats:?}");
    let shed_ids: Vec<u64> = followers.iter().filter(|t| t.resolutions() == 1).map(|t| t.id()).collect();
    assert_eq!(shed_ids.len(), 32, "every follower resolved exactly once");
}
