//! Deterministic fault-injection suite: exactly-once completion under
//! chaos.
//!
//! Each test replays seeded [`FaultPlan`]s — panics, transient failures,
//! forced timeouts, and delays injected at enqueue/dequeue/execute — and
//! asserts the scheduler's core contract on every one: **every accepted
//! request resolves exactly once** (0 lost, 0 duplicated) with one of the
//! four terminal outcomes, and the conservation counters balance after
//! drain. The headline test runs ≥1000 plans across pool widths
//! {1, 2, 8}.

use std::sync::Arc;
use std::time::Duration;

use me_linalg::{KernelVariant, Mat};
use me_ozaki::OzakiConfig;
use me_serve::{
    FaultConfig, FaultPlan, Job, Outcome, Scheduler, ServeConfig, TenantId, INJECTED_PANIC,
};

fn mat(m: usize, n: usize, seed: u64) -> Arc<Mat<f64>> {
    let mut rng = me_numerics::Rng64::seed_from_u64(seed);
    Arc::new(Mat::from_fn(m, n, |_, _| rng.range_f64(-1.0, 1.0)))
}

fn chaotic() -> FaultConfig {
    FaultConfig {
        p_panic: 0.08,
        p_transient: 0.25,
        p_force_timeout: 0.10,
        p_delay: 0.25,
        max_delay: Duration::from_micros(40),
    }
}

#[derive(Default)]
struct Tally {
    ok: u64,
    timed_out: u64,
    shed: u64,
    failed: u64,
    retries: u64,
    recovered: u64, // Ok after more than one attempt
}

/// Run one seeded plan through a fresh scheduler and assert the
/// exactly-once contract; returns the outcome tally for aggregate
/// coverage assertions.
fn run_plan(seed: u64, width: usize, tally: &mut Tally) {
    let plan = FaultPlan::new(seed, chaotic());
    let sched = Scheduler::new(ServeConfig {
        shards: 2,
        shard_threads: width,
        queue_capacity: 64,
        batch_max: 8,
        max_retries: 2,
        backoff_base: Duration::from_micros(100),
        fault_plan: Some(plan),
        tenant_weights: vec![1, 2, 3],
        ..Default::default()
    });
    let b_shared = mat(3, 2, seed ^ 0xb);
    let mut tickets = Vec::new();
    for i in 0..6u64 {
        let job = match i {
            0..=2 => Job::gemm(
                KernelVariant::Scalar,
                1.0,
                mat(1 + i as usize, 3, seed + i),
                Arc::clone(&b_shared),
            ),
            3 => Job::gemm(KernelVariant::Scalar, 2.0, mat(2, 3, seed + i), Arc::clone(&b_shared))
                .with_timeout(Duration::from_millis(250)),
            4 => Job::ozaki(OzakiConfig::dgemm_tc(), mat(2, 3, seed + i), mat(3, 2, seed ^ i)),
            // A zero timeout is already expired at dequeue: guarantees
            // TimedOut coverage in every single plan.
            _ => Job::ozaki(OzakiConfig::sgemm_tc(), mat(2, 3, seed + i), mat(3, 2, seed ^ i))
                .with_timeout(Duration::ZERO),
        };
        // Spread the trace over 3 tenants so per-tenant books are
        // exercised under the same chaos as the global books.
        let job = job.with_tenant(TenantId((i % 3) as u32));
        tickets.push(sched.submit(job).expect("all 6 submissions fit a 64-deep queue"));
    }
    // Per-tenant conservation: once every ticket is resolved the tenant
    // counters are final (a request's bumps happen-before its ticket
    // resolution), so the three ledgers must each balance and sum to the
    // global ones — under the same chaos as the global conservation gate.
    while !tickets.iter().all(|t| t.is_resolved()) {
        std::thread::yield_now();
    }
    let tenants = sched.tenant_stats();
    assert_eq!(tenants.len(), 3, "seed {seed} width {width}");
    let mut sums = [0u64; 5];
    for ts in &tenants {
        assert!(ts.is_conserved(), "seed {seed} width {width} tenant {}: {ts:?}", ts.tenant);
        assert_eq!(ts.enqueued, 2, "seed {seed} width {width}: 6 jobs fold into 3 tenants");
        sums[0] += ts.enqueued;
        sums[1] += ts.completed_ok;
        sums[2] += ts.timed_out;
        sums[3] += ts.shed;
        sums[4] += ts.failed;
    }
    let stats = sched.shutdown();
    assert_eq!(
        sums,
        [stats.enqueued, stats.completed_ok, stats.timed_out, stats.shed, stats.failed],
        "seed {seed} width {width}: tenant ledgers must sum to the global books"
    );
    assert!(
        stats.is_conserved(),
        "seed {seed} width {width}: conservation broken: {stats:?}"
    );
    assert_eq!(stats.enqueued, 6, "seed {seed} width {width}");
    assert_eq!(stats.double_resolves, 0, "seed {seed} width {width}: duplicated completion");
    tally.retries += stats.retries;
    for t in tickets {
        assert!(t.is_resolved(), "seed {seed} width {width}: lost request {}", t.id());
        assert_eq!(
            t.resolutions(),
            1,
            "seed {seed} width {width}: request {} resolved more than once",
            t.id()
        );
        let c = t.wait();
        match c.outcome {
            Outcome::Ok(_) => {
                tally.ok += 1;
                if c.attempts > 1 {
                    tally.recovered += 1;
                }
            }
            Outcome::TimedOut => tally.timed_out += 1,
            Outcome::Shed => tally.shed += 1,
            Outcome::Failed(_) => tally.failed += 1,
        }
    }
}

/// The headline gate: ≥1000 seeded fault plans, widths {1, 2, 8},
/// 0 lost and 0 duplicated completions on every plan.
#[test]
fn thousand_seeded_plans_resolve_exactly_once() {
    let mut tally = Tally::default();
    let mut plans = 0u64;
    for (w, width) in [1usize, 2, 8].into_iter().enumerate() {
        for i in 0..334u64 {
            run_plan(1_000_000 * (w as u64 + 1) + i, width, &mut tally);
            plans += 1;
        }
    }
    assert!(plans >= 1000, "suite must replay at least 1000 plans, ran {plans}");
    // Coverage: chaos actually exercised every terminal outcome and the
    // retry machinery (shed excepted — shedding has its own watermark
    // test; this config disables it).
    assert!(tally.ok > 0, "no request ever completed Ok");
    assert!(tally.timed_out > 0, "no request ever timed out");
    assert!(tally.failed > 0, "no injected panic/exhausted retry ever surfaced as Failed");
    assert!(tally.retries > 0, "no transient failure was ever retried");
    assert!(tally.recovered > 0, "no retried request ever recovered to Ok");
}

/// An injected panic fails its own handle and nothing else: with
/// p_panic = 1 every request fails with the injected payload, the shard
/// threads survive to drain, and the books still balance.
#[test]
fn injected_panics_poison_only_their_own_request() {
    let plan = FaultPlan::new(42, FaultConfig { p_panic: 1.0, ..FaultConfig::default() });
    let sched = Scheduler::new(ServeConfig {
        shards: 1,
        shard_threads: 2,
        fault_plan: Some(plan),
        ..Default::default()
    });
    let b = mat(3, 2, 1);
    let tickets: Vec<_> = (0..4)
        .map(|i| {
            sched
                .submit(Job::gemm(KernelVariant::Scalar, 1.0, mat(2, 3, i), Arc::clone(&b)))
                .expect("queue has room")
        })
        .collect();
    let stats = sched.shutdown();
    assert!(stats.is_conserved(), "{stats:?}");
    assert_eq!(stats.failed, 4);
    for t in tickets {
        match t.wait().outcome {
            Outcome::Failed(msg) => {
                assert!(msg.contains(INJECTED_PANIC), "unexpected failure message: {msg}")
            }
            other => panic!("expected Failed, got {other:?}"),
        }
    }
}

/// Transient failures retry with backoff and can recover: with a redraw
/// per attempt, some request must succeed on attempt ≥ 2.
#[test]
fn transient_faults_retry_and_recover() {
    let plan = FaultPlan::new(7, FaultConfig { p_transient: 0.6, ..FaultConfig::default() });
    let sched = Scheduler::new(ServeConfig {
        shards: 1,
        shard_threads: 1,
        max_retries: 5,
        backoff_base: Duration::from_micros(50),
        fault_plan: Some(plan),
        ..Default::default()
    });
    let b = mat(3, 2, 2);
    let tickets: Vec<_> = (0..20)
        .map(|i| {
            sched
                .submit(Job::gemm(KernelVariant::Scalar, 1.0, mat(2, 3, 100 + i), Arc::clone(&b)))
                .expect("queue has room")
        })
        .collect();
    let stats = sched.shutdown();
    assert!(stats.is_conserved(), "{stats:?}");
    assert!(stats.retries > 0, "p_transient = 0.6 never produced a retry: {stats:?}");
    let mut recovered = 0;
    for t in tickets {
        let c = t.wait();
        if matches!(c.outcome, Outcome::Ok(_)) && c.attempts >= 2 {
            recovered += 1;
        }
    }
    assert!(recovered > 0, "no request recovered via retry");
}

/// A forced timeout resolves TimedOut before any execution attempt.
#[test]
fn forced_timeouts_resolve_without_executing() {
    let plan = FaultPlan::new(9, FaultConfig { p_force_timeout: 1.0, ..FaultConfig::default() });
    let sched = Scheduler::new(ServeConfig {
        shards: 1,
        shard_threads: 1,
        fault_plan: Some(plan),
        ..Default::default()
    });
    let b = mat(3, 2, 3);
    let tickets: Vec<_> = (0..4)
        .map(|i| {
            sched
                .submit(Job::gemm(KernelVariant::Scalar, 1.0, mat(2, 3, 200 + i), Arc::clone(&b)))
                .expect("queue has room")
        })
        .collect();
    let stats = sched.shutdown();
    assert!(stats.is_conserved(), "{stats:?}");
    assert_eq!(stats.timed_out, 4);
    for t in tickets {
        let c = t.wait();
        assert!(matches!(c.outcome, Outcome::TimedOut), "expected TimedOut");
        assert_eq!(c.attempts, 0, "forced timeout must preempt execution");
    }
}

/// Regression repro (Issue 7): a retry whose backoff `ready_at` lands at
/// or past the request deadline must resolve `TimedOut` immediately at
/// requeue time — not sit out the full backoff in the delayed queue and
/// then dispatch a doomed (or worse, late-but-live) execution.
///
/// Every execution draws `Transient` (p = 1), so each request wants to
/// retry; the backoff base (250 ms) dwarfs the 20 ms deadline, so the
/// first requeue is already dead. Before the fix this test spent
/// ~250 ms per request and `retries_timed_out` did not exist; now the
/// whole drain finishes well inside one backoff window.
#[test]
fn dead_on_requeue_retries_resolve_timed_out_immediately() {
    let backoff = Duration::from_millis(250);
    let plan = FaultPlan::new(0xDEAD, FaultConfig { p_transient: 1.0, ..FaultConfig::default() });
    let sched = Scheduler::new(ServeConfig {
        shards: 1,
        shard_threads: 1,
        max_retries: 3,
        backoff_base: backoff,
        fault_plan: Some(plan),
        ..Default::default()
    });
    let b = mat(3, 2, 4);
    let started = std::time::Instant::now();
    let tickets: Vec<_> = (0..4)
        .map(|i| {
            sched
                .submit(
                    Job::gemm(KernelVariant::Scalar, 1.0, mat(2, 3, 300 + i), Arc::clone(&b))
                        .with_timeout(Duration::from_millis(20)),
                )
                .expect("queue has room")
        })
        .collect();
    let stats = sched.shutdown();
    let elapsed = started.elapsed();
    assert!(stats.is_conserved(), "{stats:?}");
    assert_eq!(stats.timed_out, 4, "every always-transient request must time out: {stats:?}");
    assert!(
        stats.retries_timed_out >= 4,
        "dead-on-requeue retries must be accounted: {stats:?}"
    );
    assert!(
        elapsed < backoff,
        "dead retries must not serve their backoff: drained in {elapsed:?} \
         with a {backoff:?} backoff base"
    );
    for t in tickets {
        let c = t.wait();
        assert!(matches!(c.outcome, Outcome::TimedOut), "expected TimedOut, got {:?}", c.outcome);
        assert_eq!(c.attempts, 1, "exactly the first execution runs; the retry is stillborn");
    }
}

/// The drain-side half of the same bug: a delayed retry whose deadline
/// expires *while it waits* (ready_at was still inside the deadline at
/// requeue time) must be resolved `TimedOut` by the delayed-queue drain,
/// never promoted to execution.
#[test]
fn delayed_retries_expiring_in_queue_resolve_timed_out() {
    let plan = FaultPlan::new(0xBEEF, FaultConfig { p_transient: 1.0, ..FaultConfig::default() });
    let sched = Scheduler::new(ServeConfig {
        shards: 1,
        shard_threads: 1,
        max_retries: 3,
        // ready_at = now + 30 ms, deadline = now + 45 ms: legal to
        // requeue, but the deadline passes before much can happen.
        backoff_base: Duration::from_millis(30),
        fault_plan: Some(plan),
        ..Default::default()
    });
    let b = mat(3, 2, 5);
    let tickets: Vec<_> = (0..3)
        .map(|i| {
            sched
                .submit(
                    Job::gemm(KernelVariant::Scalar, 1.0, mat(2, 3, 400 + i), Arc::clone(&b))
                        .with_timeout(Duration::from_millis(45)),
                )
                .expect("queue has room")
        })
        .collect();
    let stats = sched.shutdown();
    assert!(stats.is_conserved(), "{stats:?}");
    assert_eq!(stats.timed_out, 3, "{stats:?}");
    for t in tickets {
        assert!(matches!(t.wait().outcome, Outcome::TimedOut));
    }
}
