//! Differential replay: the mutex and ring queue arms are semantically
//! identical.
//!
//! The lock-free refactor (DESIGN.md §14) keeps the old mutex+Condvar
//! shard queue alive behind `ServeConfig::queue` / `ME_QUEUE` precisely
//! so this suite can exist: every seeded trace is replayed twice — once
//! per arm — under a configuration whose outcomes are
//! *schedule-independent* (no wall-clock deadlines, no shedding, faults
//! drawn purely from `(stage, request id, attempt)`), and the two runs
//! must agree request-by-request:
//!
//! - identical outcome label (Ok / Failed) for every request id;
//! - **bitwise-identical** result matrices on every Ok — coalescing is
//!   required to be a pure batching optimization on both arms;
//! - identical conservation books (`enqueued == ok + failed`, zero
//!   double-resolves) on both sides.

use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::Duration;

use me_linalg::{KernelVariant, Mat};
use me_numerics::Rng64;
use me_ozaki::OzakiConfig;
use me_serve::{
    FaultConfig, FaultPlan, Job, Outcome, QueueKind, Scheduler, ServeConfig, TenantId,
};

fn mat(m: usize, n: usize, seed: u64) -> Arc<Mat<f64>> {
    let mut rng = Rng64::seed_from_u64(seed);
    Arc::new(Mat::from_fn(m, n, |_, _| rng.range_f64(-1.0, 1.0)))
}

/// A serializable fingerprint of one completion: the outcome label plus,
/// for Ok, the exact bit pattern of the result.
#[derive(Debug, Clone, PartialEq, Eq)]
enum Fingerprint {
    Ok { shape: (usize, usize), bits: Vec<u64> },
    Failed,
}

/// Build the seeded job list for one trace: a mix of shared-B GEMM
/// buckets (coalescable), unique-B GEMMs, and Ozaki jobs, spread over 3
/// tenants. Returns `(job, submit-order id)` pairs; job construction is
/// a pure function of `seed`, so both arms replay the identical trace.
fn trace_jobs(seed: u64) -> Vec<Job> {
    let mut rng = Rng64::seed_from_u64(seed);
    let b_shared_a = mat(4, 3, seed ^ 0xaaaa);
    let b_shared_b = mat(3, 5, seed ^ 0xbbbb);
    let mut jobs = Vec::new();
    for i in 0..24u64 {
        let tenant = TenantId((i % 3) as u32);
        let job = match rng.next_u64() % 4 {
            0 => Job::gemm(
                KernelVariant::Scalar,
                1.0,
                mat(1 + (i as usize % 4), 4, seed.wrapping_add(i)),
                Arc::clone(&b_shared_a),
            ),
            1 => Job::gemm(
                KernelVariant::Scalar,
                0.5,
                mat(2, 3, seed.wrapping_add(1000 + i)),
                Arc::clone(&b_shared_b),
            ),
            2 => Job::gemm(
                KernelVariant::Scalar,
                1.0,
                mat(3, 4, seed.wrapping_add(2000 + i)),
                mat(4, 2, seed.wrapping_add(3000 + i)),
            ),
            _ => Job::ozaki(
                OzakiConfig::dgemm_tc(),
                mat(2, 4, seed.wrapping_add(4000 + i)),
                mat(4, 3, seed.wrapping_add(5000 + i)),
            ),
        };
        jobs.push(job.with_tenant(tenant));
    }
    jobs
}

/// Replay one seeded trace on one queue arm; fingerprints keyed by
/// submit order (request ids are per-scheduler, submit order is the
/// cross-arm invariant).
fn run_arm(seed: u64, width: usize, kind: QueueKind) -> BTreeMap<usize, Fingerprint> {
    // Panics and transients only: FaultPlan::decide is a pure function
    // of (stage, id, attempt), and ids are assigned in submit order, so
    // fault draws agree across arms. No deadlines, no shedding — those
    // depend on wall-clock scheduling and may legitimately differ.
    let plan = FaultPlan::new(
        seed,
        FaultConfig {
            p_panic: 0.10,
            p_transient: 0.20,
            p_force_timeout: 0.0,
            p_delay: 0.0,
            max_delay: Duration::ZERO,
        },
    );
    let sched = Scheduler::new(ServeConfig {
        shards: 2,
        shard_threads: width,
        queue_capacity: 64,
        batch_max: 8,
        max_retries: 2,
        backoff_base: Duration::from_micros(50),
        fault_plan: Some(plan),
        queue: Some(kind),
        tenant_weights: vec![1, 2, 3],
        ..Default::default()
    });
    assert_eq!(sched.queue_kind(), kind);
    let tickets: Vec<_> = trace_jobs(seed)
        .into_iter()
        .map(|job| sched.submit(job).expect("trace fits a 64-deep queue"))
        .collect();
    let stats = sched.shutdown();
    assert!(stats.is_conserved(), "seed {seed} {kind:?}: {stats:?}");
    assert_eq!(stats.enqueued, 24, "seed {seed} {kind:?}");
    assert_eq!(stats.double_resolves, 0, "seed {seed} {kind:?}");
    assert_eq!(stats.shed, 0, "seed {seed} {kind:?}: shedding must be off");
    assert_eq!(stats.timed_out, 0, "seed {seed} {kind:?}: no deadline may fire");
    tickets
        .into_iter()
        .enumerate()
        .map(|(order, t)| {
            let fp = match t.wait().outcome {
                Outcome::Ok(c) => Fingerprint::Ok {
                    shape: c.shape(),
                    bits: c.as_slice().iter().map(|v| v.to_bits()).collect(),
                },
                Outcome::Failed(_) => Fingerprint::Failed,
                other => panic!("seed {seed} {kind:?}: schedule-dependent outcome {other:?}"),
            };
            (order, fp)
        })
        .collect()
}

/// The headline differential gate: seeded traces × widths {1, 2, 8},
/// mutex and ring arms produce identical per-request outcome labels and
/// bitwise-identical Ok payloads.
#[test]
fn mutex_and_ring_arms_agree_bitwise() {
    let mut ok_seen = 0u64;
    let mut failed_seen = 0u64;
    for (w, width) in [1usize, 2, 8].into_iter().enumerate() {
        for i in 0..12u64 {
            let seed = 7_000 * (w as u64 + 1) + i;
            let mutex = run_arm(seed, width, QueueKind::Mutex);
            let ring = run_arm(seed, width, QueueKind::Ring);
            assert_eq!(mutex.len(), ring.len(), "seed {seed} width {width}");
            for (order, m) in &mutex {
                let r = ring.get(order).expect("same request set");
                assert_eq!(
                    m, r,
                    "seed {seed} width {width}: request #{order} diverged between arms"
                );
                match m {
                    Fingerprint::Ok { .. } => ok_seen += 1,
                    Fingerprint::Failed => failed_seen += 1,
                }
            }
        }
    }
    // The chaos mix must actually exercise both terminal labels, or the
    // bitwise assertion above proves less than it claims.
    assert!(ok_seen > 0, "no trace ever produced an Ok to compare");
    assert!(failed_seen > 0, "no trace ever produced a Failed to compare");
}

/// Fault-free determinism: without any injected faults, every request
/// succeeds on both arms and the payloads are bitwise identical — the
/// coalescing path itself (the hot one) is arm-invariant.
#[test]
fn fault_free_traces_are_bitwise_identical() {
    for width in [1usize, 2, 8] {
        let seed = 0x5eed ^ width as u64;
        let run = |kind: QueueKind| -> BTreeMap<usize, Fingerprint> {
            let sched = Scheduler::new(ServeConfig {
                shards: 1,
                shard_threads: width,
                queue_capacity: 64,
                batch_max: 8,
                queue: Some(kind),
                ..Default::default()
            });
            let tickets: Vec<_> = trace_jobs(seed)
                .into_iter()
                .map(|job| sched.submit(job).expect("room"))
                .collect();
            let stats = sched.shutdown();
            assert!(stats.is_conserved(), "{kind:?}: {stats:?}");
            assert_eq!(stats.completed_ok, 24, "{kind:?}: {stats:?}");
            tickets
                .into_iter()
                .enumerate()
                .map(|(order, t)| match t.wait().outcome {
                    Outcome::Ok(c) => (
                        order,
                        Fingerprint::Ok {
                            shape: c.shape(),
                            bits: c.as_slice().iter().map(|v| v.to_bits()).collect(),
                        },
                    ),
                    other => panic!("{kind:?}: unexpected {other:?}"),
                })
                .collect()
        };
        assert_eq!(
            run(QueueKind::Mutex),
            run(QueueKind::Ring),
            "width {width}: fault-free payloads diverged"
        );
    }
}
