//! # matrix-engines
//!
//! A comprehensive Rust reproduction of Domke et al., *"Matrix Engines for
//! High Performance Computing: A Paragon of Performance or Grasping at
//! Straws?"* (IPDPS 2021).
//!
//! The paper is a measurement and cost-benefit study of matrix engines
//! (Tensor Cores, AMX, MMA, TPU-style systolic arrays) for HPC. This crate
//! is the facade over the workspace that rebuilds every substrate the paper
//! measures on — device simulators, a software BLAS/LAPACK stack, bit-exact
//! low-precision formats, the Ozaki high-precision-emulation scheme, a
//! Score-P-style profiler, 77 HPC workload models, 12 DL workload models,
//! a Spack-shaped package ecosystem, and a K-computer job-log corpus — and
//! regenerates every table and figure of the paper's evaluation.
//!
//! ## Quickstart
//!
//! ```
//! use matrix_engines::prelude::*;
//!
//! // How much would a 4x matrix engine save the K computer?
//! let k = MachineMix::k_computer_default();
//! let saving = k.node_hour_reduction(MeSpeedup::Finite(4.0));
//! assert!((saving - 0.053).abs() < 0.01); // the paper's 5.3%
//!
//! // Emulate an f64 GEMM on an f16 matrix engine (Ozaki scheme).
//! let a = Mat::from_fn(8, 8, |i, j| 1.0 / (1.0 + (i + j) as f64));
//! let b = Mat::eye(8);
//! let r = ozaki_gemm(&a, &b, &OzakiConfig::dgemm_tc());
//! assert!(r.c.max_abs_diff(&a) < 1e-14);
//! ```
//!
//! See `DESIGN.md` for the system inventory and `EXPERIMENTS.md` for the
//! paper-vs-measured record of every artifact.

pub use me_core as core;
pub use me_engine as engine;
pub use me_linalg as linalg;
pub use me_model as model;
pub use me_numerics as numerics;
pub use me_ozaki as ozaki;
pub use me_par as par;
pub use me_profiler as profiler;
pub use me_report as report;
pub use me_serve as serve;
pub use me_survey as survey;
pub use me_trace as trace;
pub use me_workloads as workloads;

/// The most commonly used items in one import.
pub mod prelude {
    pub use me_core::experiments;
    pub use me_engine::{
        catalog, Device, EngineKind, ExecutionModel, GemmShape, HostParallelism, NumericFormat,
        PowerSampler, TdpGovernor,
    };
    pub use me_par::WorkerPool;
    pub use me_linalg::{gemm, ir_solve, sym_eig, GemmAlgo, Mat};
    pub use me_model::{MachineMix, MeSpeedup};
    pub use me_numerics::{Bf16, FloatFormat, Tf32, F16};
    pub use me_ozaki::{
        ozaki_gemm, ozaki_gemm_backend, ozaki_gemm_int8, ozaki_gemm_parallel, Int8Engine,
        OzakiBackend, OzakiConfig, TargetAccuracy,
    };
    pub use me_profiler::{Profiler, RegionClass};
    pub use me_serve::{Job, Outcome, Scheduler, ServeConfig};
    pub use me_survey::{generate_k_corpus, spack_ecosystem};
    pub use me_workloads::{all_benchmarks, dl_models, run_benchmark, PrecisionMode};
}

#[cfg(test)]
mod tests {
    #[test]
    fn facade_reexports_compile() {
        use crate::prelude::*;
        let d = catalog::v100();
        assert!(d.has_matrix_engine());
        assert_eq!(all_benchmarks().len(), 77);
    }
}
